//! Process-level tests of the `sepdc` binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sepdc"))
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sepdc_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("generate"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn generate_knn_figure_pipeline() {
    let dir = tmpdir("pipeline");
    let pts = dir.join("pts.csv");
    let edges = dir.join("edges.csv");
    let fig = dir.join("fig.svg");

    let out = bin()
        .args([
            "generate",
            "--workload",
            "clusters",
            "--n",
            "300",
            "--dim",
            "2",
            "--seed",
            "5",
            "--out",
            pts.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(std::fs::read_to_string(&pts).unwrap().lines().count(), 300);

    let out = bin()
        .args([
            "knn",
            "--input",
            pts.to_str().unwrap(),
            "--k",
            "2",
            "--algo",
            "parallel",
            "--edges-out",
            edges.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let summary = String::from_utf8_lossy(&out.stderr);
    assert!(summary.contains("300 points (d=2)"), "{summary}");
    let edge_text = std::fs::read_to_string(&edges).unwrap();
    assert!(edge_text.lines().count() > 300);

    let out = bin()
        .args([
            "figure",
            "--input",
            pts.to_str().unwrap(),
            "--out",
            fig.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(std::fs::read_to_string(&fig).unwrap().starts_with("<svg"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn separator_reports_to_stdout() {
    let dir = tmpdir("sep");
    let pts = dir.join("pts.csv");
    bin()
        .args([
            "generate",
            "--workload",
            "uniform-cube",
            "--n",
            "400",
            "--out",
            pts.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let out = bin()
        .args(["separator", "--input", pts.to_str().unwrap(), "--k", "1"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("split"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn knn_report_flag_then_pretty_printer() {
    let dir = tmpdir("report");
    let pts = dir.join("pts.csv");
    let report = dir.join("run.json");

    let out = bin()
        .args([
            "generate",
            "--workload",
            "uniform-cube",
            "--n",
            "500",
            "--dim",
            "2",
            "--seed",
            "11",
            "--out",
            pts.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    let out = bin()
        .args([
            "knn",
            "--input",
            pts.to_str().unwrap(),
            "--k",
            "2",
            "--algo",
            "parallel",
            "--report",
            report.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Summary surfaces the fallback counters (satellite fix).
    let summary = String::from_utf8_lossy(&out.stderr);
    assert!(summary.contains("forced leaves"), "{summary}");
    assert!(summary.contains("degenerate splits"), "{summary}");

    let json = std::fs::read_to_string(&report).unwrap();
    assert!(json.contains("\"run_report_version\": 1"), "{json}");
    assert!(json.contains("\"phases\""), "{json}");
    assert!(json.contains("\"depth\""), "{json}");

    let out = bin()
        .args(["report", "--input", report.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("run report v1"), "{text}");
    assert!(text.contains("per-depth histogram"), "{text}");

    // --report with an uninstrumented algorithm is a clean error.
    let out = bin()
        .args([
            "knn",
            "--input",
            pts.to_str().unwrap(),
            "--algo",
            "brute",
            "--report",
            report.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("does not produce a run report"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn query_serves_probes_end_to_end() {
    let dir = tmpdir("query");
    let pts = dir.join("pts.csv");
    let hits = dir.join("hits.csv");
    let report = dir.join("serve.json");

    let out = bin()
        .args([
            "generate",
            "--workload",
            "uniform-cube",
            "--n",
            "400",
            "--dim",
            "2",
            "--seed",
            "9",
            "--out",
            pts.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    let out = bin()
        .args([
            "query",
            "--input",
            pts.to_str().unwrap(),
            "--k",
            "2",
            "--probe-workload",
            "clusters",
            "--probe-n",
            "150",
            "--interior",
            "--chunk",
            "64",
            "--out",
            hits.to_str().unwrap(),
            "--report",
            report.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let summary = String::from_utf8_lossy(&out.stderr);
    assert!(summary.contains("served 150 probes"), "{summary}");
    assert!(summary.contains("open predicate"), "{summary}");

    // Hit lists: header + one row per probe.
    let csv = std::fs::read_to_string(&hits).unwrap();
    assert_eq!(csv.lines().count(), 151, "{csv}");
    assert!(csv.starts_with("# probe,count,ball_ids"), "{csv}");

    // Serve run report round-trips through the pretty-printer.
    let json = std::fs::read_to_string(&report).unwrap();
    assert!(json.contains("\"algo\": \"query-serve\""), "{json}");
    let out = bin()
        .args(["report", "--input", report.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("query-serve"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_input_is_a_clean_error() {
    let out = bin()
        .args(["knn", "--input", "/nonexistent/file.csv"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn index_build_inspect_serve_pipeline() {
    use std::io::{BufRead, BufReader, Write};
    use std::process::Stdio;

    let dir = tmpdir("index");
    let pts = dir.join("pts.csv");
    let probes = dir.join("probes.csv");
    let snap = dir.join("index.snap");
    let hits = dir.join("hits.csv");

    for (workload, n, seed, path) in [
        ("uniform-cube", "500", "9", &pts),
        ("clusters", "80", "3", &probes),
    ] {
        let out = bin()
            .args([
                "generate",
                "--workload",
                workload,
                "--n",
                n,
                "--dim",
                "2",
                "--seed",
                seed,
                "--out",
                path.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(out.status.success());
    }

    // Build a snapshot, then inspect it.
    let out = bin()
        .args([
            "index",
            "build",
            "--input",
            pts.to_str().unwrap(),
            "--k",
            "2",
            "--seed",
            "5",
            "--out",
            snap.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let summary = String::from_utf8_lossy(&out.stderr);
    assert!(summary.contains("500 balls"), "{summary}");

    let out = bin()
        .args(["index", "inspect", "--input", snap.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("query-tree"), "{text}");
    assert!(text.contains("fnv1a64"), "{text}");

    // The reference answers from the one-shot query command.
    let out = bin()
        .args([
            "query",
            "--input",
            pts.to_str().unwrap(),
            "--k",
            "2",
            "--seed",
            "5",
            "--probes",
            probes.to_str().unwrap(),
            "--out",
            hits.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let want: Vec<String> = std::fs::read_to_string(&hits)
        .unwrap()
        .lines()
        .filter(|l| !l.starts_with('#'))
        .map(String::from)
        .collect();

    // The daemon over the same probes must produce identical rows.
    let mut child = bin()
        .args(["serve", "--index", snap.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    {
        let mut stdin = child.stdin.take().unwrap();
        stdin
            .write_all(std::fs::read(&probes).unwrap().as_slice())
            .unwrap();
        stdin.write_all(b"stats\nquit\n").unwrap();
    }
    let reader = BufReader::new(child.stdout.take().unwrap());
    let lines: Vec<String> = reader.lines().map(Result::unwrap).collect();
    assert!(child.wait().unwrap().success());
    assert_eq!(&lines[..80], &want[..], "daemon rows must match query rows");
    assert!(
        lines[80].starts_with("ok generation=1 n=500"),
        "{}",
        lines[80]
    );
    assert_eq!(lines[81], "ok bye");

    // `index frobnicate` is a clean usage error.
    let out = bin().args(["index", "frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("index build|inspect"));

    let _ = std::fs::remove_dir_all(&dir);
}
