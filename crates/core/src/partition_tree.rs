//! The partition tree produced by the separator-based recursion
//! (the `T` of Section 6), and the ball-marching machinery of Fast
//! Correction (Section 6.2).
//!
//! Internal nodes carry the separator chosen at that recursion step; leaves
//! carry the point ids solved by the base case. *Marching* a ball `B` down
//! the tree computes its set of **reachable** leaves (Lemma 6.3): the root
//! is reachable; from a reachable node, the left child is reachable when
//! `B` meets the separator or its interior, the right child when `B` meets
//! the separator or its exterior. Every point of the point set that lies
//! inside `B` sits in a reachable leaf, so the reachable leaves are a sound
//! candidate set for correcting `B`'s radius.
//!
//! The tree is arena-allocated: all nodes live in one contiguous `Vec` and
//! children are referred to by index, and all leaf point ids live in one
//! shared permutation array which each leaf addresses as a `(start, len)`
//! range. This removes per-node `Box`es and per-leaf `Vec`s, and makes
//! marching a pure array walk.

use rayon::prelude::*;
use sepdc_geom::aabb::Aabb;
use sepdc_geom::ball::Ball;
use sepdc_geom::shape::Separator;

/// One node of a [`PartitionTree`], referring to children by arena index
/// and to leaf points by a range of the tree's permutation array.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PartitionNode<const D: usize> {
    /// Internal node: the separator plus the two subtree indices.
    Internal {
        /// The separator chosen at this recursion step.
        sep: Separator<D>,
        /// Number of points below this node.
        size: u32,
        /// Arena index of the interior-side subtree.
        left: u32,
        /// Arena index of the exterior-side subtree.
        right: u32,
    },
    /// Leaf: base-case point ids, stored as `perm[start..start + len]`.
    Leaf {
        /// Start of this leaf's range in the permutation array.
        start: u32,
        /// Number of points at this leaf.
        len: u32,
    },
}

/// A partition tree in arena form: `nodes` holds every node with children
/// at strictly smaller indices than their parent (postorder) and the root
/// last; `perm` is a permutation of the point ids, tiled left-to-right by
/// the leaves.
pub struct PartitionTree<const D: usize> {
    nodes: Vec<PartitionNode<D>>,
    perm: Vec<u32>,
    /// Optional per-node bounding boxes, parallel to `nodes` (`bounds[i]`
    /// bounds every point in the subtree rooted at `i`). Present on trees
    /// built by the parallel recursion; marching uses them for ball-vs-box
    /// pruning.
    bounds: Option<Vec<Aabb<D>>>,
}

impl<const D: usize> PartitionTree<D> {
    /// Assemble a tree from its arena parts.
    ///
    /// Invariants (checked in debug builds): `nodes` is non-empty, every
    /// internal node's children have smaller indices than it (so the last
    /// node is the root), and every leaf range lies within `perm`.
    pub fn from_parts(nodes: Vec<PartitionNode<D>>, perm: Vec<u32>) -> Self {
        assert!(!nodes.is_empty(), "a tree has at least one node");
        #[cfg(debug_assertions)]
        for (i, n) in nodes.iter().enumerate() {
            match *n {
                PartitionNode::Internal { left, right, .. } => {
                    debug_assert!((left as usize) < i && (right as usize) < i);
                }
                PartitionNode::Leaf { start, len } => {
                    debug_assert!((start + len) as usize <= perm.len());
                }
            }
        }
        PartitionTree {
            nodes,
            perm,
            bounds: None,
        }
    }

    /// Assemble a tree with per-node bounding boxes (`bounds[i]` must
    /// bound every point of the subtree rooted at node `i`).
    ///
    /// # Panics
    /// Panics when `bounds` is not parallel to `nodes`.
    pub fn from_parts_with_bounds(
        nodes: Vec<PartitionNode<D>>,
        perm: Vec<u32>,
        bounds: Vec<Aabb<D>>,
    ) -> Self {
        assert_eq!(nodes.len(), bounds.len(), "bounds must parallel nodes");
        let mut t = Self::from_parts(nodes, perm);
        t.bounds = Some(bounds);
        t
    }

    /// Per-node bounding boxes, when the tree carries them.
    pub fn bounds(&self) -> Option<&[Aabb<D>]> {
        self.bounds.as_deref()
    }

    /// Arena index of the root (always the last node).
    pub fn root(&self) -> u32 {
        (self.nodes.len() - 1) as u32
    }

    /// The node at arena index `id`.
    pub fn node(&self, id: u32) -> &PartitionNode<D> {
        &self.nodes[id as usize]
    }

    /// All nodes, children before parents, root last.
    pub fn nodes(&self) -> &[PartitionNode<D>] {
        &self.nodes
    }

    /// The point ids of a leaf range (as stored in a [`PartitionNode::Leaf`]).
    pub fn leaf_point_ids(&self, start: u32, len: u32) -> &[u32] {
        &self.perm[start as usize..(start + len) as usize]
    }

    /// The whole permutation array (point ids tiled left-to-right by leaf
    /// order) — the flat column the snapshot writer serializes.
    pub fn perm(&self) -> &[u32] {
        &self.perm
    }

    /// Number of points in the tree.
    pub fn size(&self) -> usize {
        match self.nodes[self.root() as usize] {
            PartitionNode::Internal { size, .. } => size as usize,
            PartitionNode::Leaf { len, .. } => len as usize,
        }
    }

    /// Height in edges (leaf = 0). One bottom-up pass over the arena —
    /// children precede parents, so each node's height is ready when
    /// visited.
    pub fn height(&self) -> usize {
        let mut h = vec![0usize; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if let PartitionNode::Internal { left, right, .. } = n {
                h[i] = 1 + h[*left as usize].max(h[*right as usize]);
            }
        }
        h[self.root() as usize]
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, PartitionNode::Leaf { .. }))
            .count()
    }

    /// All point ids, in leaf order (explicit depth-first walk from the
    /// root, left before right).
    pub fn collect_point_ids(&self, out: &mut Vec<u32>) {
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            match self.nodes[id as usize] {
                PartitionNode::Leaf { start, len } => {
                    out.extend_from_slice(self.leaf_point_ids(start, len));
                }
                PartitionNode::Internal { left, right, .. } => {
                    // Right pushed first so left is visited first.
                    stack.push(right);
                    stack.push(left);
                }
            }
        }
    }
}

/// Partition `ids` in place so every id satisfying `pred` precedes every id
/// that does not; returns the boundary. Unstable (order within each side is
/// permuted) and allocation-free — this is how the recursion carves its
/// id slice into the two child slices.
pub(crate) fn partition_in_place(ids: &mut [u32], mut pred: impl FnMut(u32) -> bool) -> usize {
    let mut lo = 0usize;
    let mut hi = ids.len();
    while lo < hi {
        if pred(ids[lo]) {
            lo += 1;
        } else {
            hi -= 1;
            ids.swap(lo, hi);
        }
    }
    lo
}

/// Slice length above which [`partition_in_place_par`] precomputes the
/// predicate column in parallel. Gated on size only — never on the pool —
/// but either path produces the identical layout anyway (the swap walk is
/// a pure function of the predicate column).
const PARTITION_PAR_CUTOFF: usize = 1 << 14;

/// [`partition_in_place`] with the predicate evaluated as a parallel
/// chunked scan first. The expensive part of a partition step is the `m`
/// geometry tests, not the `O(m)` pointer walk; precomputing the flag
/// column moves those tests onto the pool while the subsequent two-pointer
/// swap — which carries ids and flags together so `flags[lo]` always
/// describes `ids[lo]` — replays exactly the comparisons the serial
/// predicate-driven walk would make. Byte-identical final layout.
pub(crate) fn partition_in_place_par(ids: &mut [u32], pred: impl Fn(u32) -> bool + Sync) -> usize {
    if ids.len() < PARTITION_PAR_CUTOFF {
        return partition_in_place(ids, pred);
    }
    let mut flags: Vec<bool> = ids.par_iter().map(|&i| pred(i)).collect();
    let mut lo = 0usize;
    let mut hi = ids.len();
    while lo < hi {
        if flags[lo] {
            lo += 1;
        } else {
            hi -= 1;
            ids.swap(lo, hi);
            flags.swap(lo, hi);
        }
    }
    lo
}

/// Result of marching a batch of balls down a partition tree.
#[derive(Clone, Debug)]
pub struct MarchOutcome {
    /// For each input ball, the point ids found in its reachable leaves.
    /// Meaningful only when `aborted` is false.
    pub candidates: Vec<Vec<u32>>,
    /// Largest number of active (ball, node) pairs at any level — the
    /// quantity Lemma 6.2 bounds by `m^{1-η}` w.h.p.
    pub max_active_per_level: usize,
    /// Number of levels marched.
    pub levels: usize,
    /// Total (ball, node) steps — the marching work.
    pub total_steps: u64,
    /// Subtrees a ball would have descended into by the separator
    /// predicates alone, skipped because the ball misses the subtree's
    /// bounding box (0 when the tree carries no bounds).
    pub pruned: u64,
    /// `true` when the active-ball limit was exceeded and the march was
    /// abandoned (the caller must punt).
    pub aborted: bool,
}

/// March `balls` down `tree` level-synchronously, collecting for each ball
/// the point ids in its reachable leaves. Aborts (returning
/// `aborted = true`) as soon as a level holds more than `active_limit`
/// active pairs — the "unlucky" event of Lemma 6.2 that triggers a punt.
pub fn march_balls<const D: usize>(
    tree: &PartitionTree<D>,
    balls: &[Ball<D>],
    active_limit: usize,
) -> MarchOutcome {
    march_arena(
        &tree.nodes,
        tree.root(),
        &tree.perm,
        balls,
        active_limit,
        tree.bounds.as_deref(),
    )
}

/// [`march_balls`] with AABB pruning disabled even when the tree carries
/// bounds. The pruned and unpruned marches agree on every in-ball
/// candidate (pruning only removes subtrees whose box the ball misses, and
/// such subtrees cannot contain in-ball points) — the soundness tests pin
/// this equivalence.
pub fn march_balls_unpruned<const D: usize>(
    tree: &PartitionTree<D>,
    balls: &[Ball<D>],
    active_limit: usize,
) -> MarchOutcome {
    march_arena(
        &tree.nodes,
        tree.root(),
        &tree.perm,
        balls,
        active_limit,
        None,
    )
}

/// March over raw arena parts, starting from `root`. Lets the recursion
/// march a *subtree* of a not-yet-assembled tree (leaf ranges index into
/// `perm`, which for a subtree is that recursive call's id slice).
pub(crate) fn march_arena<const D: usize>(
    nodes: &[PartitionNode<D>],
    root: u32,
    perm: &[u32],
    balls: &[Ball<D>],
    active_limit: usize,
    bounds: Option<&[Aabb<D>]>,
) -> MarchOutcome {
    let mut candidates: Vec<Vec<u32>> = vec![Vec::new(); balls.len()];
    let mut frontier: Vec<(u32, u32)> = (0..balls.len()).map(|b| (root, b as u32)).collect();
    let mut levels = 0usize;
    let mut max_active = frontier.len();
    let mut total_steps = 0u64;
    let mut pruned = 0u64;
    let mut next: Vec<(u32, u32)> = Vec::new();

    while !frontier.is_empty() {
        if frontier.len() > active_limit {
            return MarchOutcome {
                candidates,
                max_active_per_level: frontier.len(),
                levels,
                total_steps,
                pruned,
                aborted: true,
            };
        }
        max_active = max_active.max(frontier.len());
        total_steps += frontier.len() as u64;
        next.clear();
        next.reserve(frontier.len() * 2);
        for &(node, b) in &frontier {
            let ball = &balls[b as usize];
            match &nodes[node as usize] {
                PartitionNode::Leaf { start, len } => {
                    candidates[b as usize]
                        .extend_from_slice(&perm[*start as usize..(*start + *len) as usize]);
                }
                PartitionNode::Internal {
                    sep, left, right, ..
                } => {
                    // Ball-vs-box rejection: a child whose subtree box the
                    // ball misses cannot contain an in-ball point, so
                    // skipping it never loses a candidate that could pass
                    // the strict `d < r^2` merge test downstream. Sound for
                    // empty boxes too (distance +inf => always pruned, and
                    // an empty subtree has no candidates).
                    for (reaches, child) in [
                        (ball.touches_interior_of(sep), *left),
                        (ball.touches_exterior_of(sep), *right),
                    ] {
                        if !reaches {
                            continue;
                        }
                        if let Some(bs) = bounds {
                            if !bs[child as usize].intersects_ball(ball) {
                                pruned += 1;
                                continue;
                            }
                        }
                        next.push((child, b));
                    }
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        levels += 1;
    }
    MarchOutcome {
        candidates,
        max_active_per_level: max_active,
        levels,
        total_steps,
        pruned,
        aborted: false,
    }
}

/// One chunk's share of a parallel march: loop-top frontier sizes per
/// level (the aborting level's size included when `aborted`), pruned
/// subtrees per *expanded* level, and the chunk's candidate lists.
struct MarchChunkOutcome {
    candidates: Vec<Vec<u32>>,
    actives: Vec<u64>,
    pruned: Vec<u64>,
    aborted: bool,
}

/// March one contiguous chunk of balls, recording per-level accounting so
/// the combiner can reconstruct the monolithic march's numbers exactly.
/// Each ball's BFS depends only on that ball, so a level-`l` frontier of
/// the whole batch is the disjoint union of the chunks' level-`l`
/// frontiers — per-level sums over chunks *are* the monolithic counts.
/// The chunk still aborts at the full `active_limit` (its frontier is a
/// subset of the combined one, so exceeding it proves a combined abort)
/// to bound speculative work on punting nodes.
fn march_chunk<const D: usize>(
    nodes: &[PartitionNode<D>],
    root: u32,
    perm: &[u32],
    balls: &[Ball<D>],
    active_limit: usize,
    bounds: Option<&[Aabb<D>]>,
) -> MarchChunkOutcome {
    let mut candidates: Vec<Vec<u32>> = vec![Vec::new(); balls.len()];
    let mut frontier: Vec<(u32, u32)> = (0..balls.len()).map(|b| (root, b as u32)).collect();
    let mut actives: Vec<u64> = Vec::new();
    let mut pruned: Vec<u64> = Vec::new();
    let mut aborted = false;
    let mut next: Vec<(u32, u32)> = Vec::new();

    while !frontier.is_empty() {
        actives.push(frontier.len() as u64);
        if frontier.len() > active_limit {
            aborted = true;
            break;
        }
        let mut level_pruned = 0u64;
        next.clear();
        next.reserve(frontier.len() * 2);
        for &(node, b) in &frontier {
            let ball = &balls[b as usize];
            match &nodes[node as usize] {
                PartitionNode::Leaf { start, len } => {
                    candidates[b as usize]
                        .extend_from_slice(&perm[*start as usize..(*start + *len) as usize]);
                }
                PartitionNode::Internal {
                    sep, left, right, ..
                } => {
                    for (reaches, child) in [
                        (ball.touches_interior_of(sep), *left),
                        (ball.touches_exterior_of(sep), *right),
                    ] {
                        if !reaches {
                            continue;
                        }
                        if let Some(bs) = bounds {
                            if !bs[child as usize].intersects_ball(ball) {
                                level_pruned += 1;
                                continue;
                            }
                        }
                        next.push((child, b));
                    }
                }
            }
        }
        pruned.push(level_pruned);
        std::mem::swap(&mut frontier, &mut next);
    }
    MarchChunkOutcome {
        candidates,
        actives,
        pruned,
        aborted,
    }
}

/// [`march_arena`] split into fixed chunks marched independently, with the
/// per-level accounting recombined into the exact monolithic numbers:
/// the combined march aborts at the first level whose *summed* frontier
/// exceeds `active_limit`, `total_steps`/`pruned` count only levels
/// strictly before it, and on success every field matches [`march_arena`]
/// for any `chunk_size` (pinned by tests). On abort the candidate lists
/// are empty placeholders — `MarchOutcome::candidates` is documented
/// meaningless when `aborted`.
pub(crate) fn march_arena_chunked<const D: usize>(
    nodes: &[PartitionNode<D>],
    root: u32,
    perm: &[u32],
    balls: &[Ball<D>],
    active_limit: usize,
    bounds: Option<&[Aabb<D>]>,
    chunk_size: usize,
) -> MarchOutcome {
    if balls.len() > active_limit {
        // Level-0 abort: the monolithic loop bails before expanding.
        return MarchOutcome {
            candidates: vec![Vec::new(); balls.len()],
            max_active_per_level: balls.len(),
            levels: 0,
            total_steps: 0,
            pruned: 0,
            aborted: true,
        };
    }
    let chunks: Vec<MarchChunkOutcome> = balls
        .par_chunks(chunk_size.max(1))
        .map(|c| march_chunk(nodes, root, perm, c, active_limit, bounds))
        .collect();
    let max_levels = chunks.iter().map(|c| c.actives.len()).max().unwrap_or(0);
    let mut sum_act = vec![0u64; max_levels];
    let mut sum_pruned = vec![0u64; max_levels];
    for c in &chunks {
        for (l, &a) in c.actives.iter().enumerate() {
            sum_act[l] += a;
        }
        for (l, &p) in c.pruned.iter().enumerate() {
            sum_pruned[l] += p;
        }
    }
    if let Some(l) = sum_act.iter().position(|&a| a > active_limit as u64) {
        return MarchOutcome {
            candidates: vec![Vec::new(); balls.len()],
            max_active_per_level: sum_act[l] as usize,
            levels: l,
            total_steps: sum_act[..l].iter().sum(),
            pruned: sum_pruned[..l].iter().sum(),
            aborted: true,
        };
    }
    // A chunk abort implies its own level sum already exceeded the limit,
    // which the combined scan above would have caught.
    debug_assert!(chunks.iter().all(|c| !c.aborted));
    let mut candidates = Vec::with_capacity(balls.len());
    for c in chunks {
        candidates.extend(c.candidates);
    }
    MarchOutcome {
        candidates,
        max_active_per_level: sum_act.iter().copied().max().unwrap_or(0) as usize,
        levels: max_levels,
        total_steps: sum_act.iter().sum(),
        pruned: sum_pruned.iter().sum(),
        aborted: false,
    }
}

/// Ball count below which a parallel march costs more to fork than to run.
/// Ball-count floor below which the march is always run serially: the
/// chunked driver's per-chunk frontier allocations cost more than the
/// march itself on tiny crossing sets.
const MARCH_PAR_MIN_BALLS: usize = 64;

/// Thread-count-oblivious march driver: serial [`march_arena`] on small
/// batches or a one-worker pool, chunked parallel otherwise. Legal to gate
/// on the pool size because both paths return identical accounting and
/// (when not aborted) identical candidates — the chunk partition never
/// leaks into the output.
pub(crate) fn march_arena_par<const D: usize>(
    nodes: &[PartitionNode<D>],
    root: u32,
    perm: &[u32],
    balls: &[Ball<D>],
    active_limit: usize,
    bounds: Option<&[Aabb<D>]>,
) -> MarchOutcome {
    let threads = rayon::current_num_threads();
    if balls.len() < MARCH_PAR_MIN_BALLS || threads <= 1 {
        return march_arena(nodes, root, perm, balls, active_limit, bounds);
    }
    // ~4 chunks per worker for load balance, floored so degenerate splits
    // never schedule per-ball tasks.
    let chunk = balls.len().div_ceil(4 * threads).max(8);
    march_arena_chunked(nodes, root, perm, balls, active_limit, bounds, chunk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepdc_geom::point::Point;
    use sepdc_geom::sphere::Sphere;
    use sepdc_geom::Hyperplane;

    /// Hand-built tree over points 0..8 on a line, split at x = 4, then at
    /// x = 2 and x = 6. Arena layout (postorder, root last):
    /// leaves [0,1] [2,3] at 0/1, cut-2 at 2, leaves [4,5] [6,7] at 3/4,
    /// cut-6 at 5, root cut-4 at 6.
    fn line_tree() -> PartitionTree<1> {
        let leaf = |start: u32| PartitionNode::Leaf { start, len: 2 };
        let cut = |x: f64, size: u32, left: u32, right: u32| PartitionNode::Internal {
            sep: Separator::Halfspace(Hyperplane::axis_aligned(0, x)),
            size,
            left,
            right,
        };
        PartitionTree::from_parts(
            vec![
                leaf(0),
                leaf(2),
                cut(2.0, 4, 0, 1),
                leaf(4),
                leaf(6),
                cut(6.0, 4, 3, 4),
                cut(4.0, 8, 2, 5),
            ],
            (0..8).collect(),
        )
    }

    #[test]
    fn structure_queries() {
        let t = line_tree();
        assert_eq!(t.height(), 2);
        assert_eq!(t.leaves(), 4);
        assert_eq!(t.size(), 8);
        let mut ids = Vec::new();
        t.collect_point_ids(&mut ids);
        assert_eq!(ids, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn small_ball_reaches_one_leaf() {
        let t = line_tree();
        // Ball at x=1, r=0.4: only the [0,1] leaf is reachable.
        let balls = vec![Ball::new(Point::<1>::from([1.0]), 0.4)];
        let out = march_balls(&t, &balls, 100);
        assert!(!out.aborted);
        assert_eq!(out.candidates[0], vec![0, 1]);
        assert_eq!(out.levels, 3);
    }

    #[test]
    fn straddling_ball_reaches_both_sides() {
        let t = line_tree();
        // Ball at x=4, r=0.5 crosses the root cut: reaches leaves around 4.
        let balls = vec![Ball::new(Point::<1>::from([4.0]), 0.5)];
        let out = march_balls(&t, &balls, 100);
        assert!(!out.aborted);
        // Reaches [2,3] (interior side, then its right leaf) and [4,5].
        let mut c = out.candidates[0].clone();
        c.sort_unstable();
        assert_eq!(c, vec![2, 3, 4, 5]);
    }

    #[test]
    fn huge_ball_reaches_everything() {
        let t = line_tree();
        let balls = vec![Ball::new(Point::<1>::from([4.0]), 100.0)];
        let out = march_balls(&t, &balls, 100);
        let mut c = out.candidates[0].clone();
        c.sort_unstable();
        assert_eq!(c, (0..8).collect::<Vec<u32>>());
        assert_eq!(out.max_active_per_level, 4, "duplicated at each level");
    }

    #[test]
    fn reachability_covers_contained_points() {
        // Soundness property: every point inside the ball appears among
        // the candidates, for a tree with sphere separators.
        let pts: Vec<Point<2>> = (0..16)
            .map(|i| Point::from([(i % 4) as f64, (i / 4) as f64]))
            .collect();
        // Sphere around (1.5, 1.5) radius 1.2 as root; children leaves by
        // the actual side of each point.
        let sep: Separator<2> = Sphere::new(Point::from([1.5, 1.5]), 1.2).into();
        let mut perm = Vec::new();
        let mut right_ids = Vec::new();
        for (i, p) in pts.iter().enumerate() {
            if sep.side(p).routes_interior() {
                perm.push(i as u32);
            } else {
                right_ids.push(i as u32);
            }
        }
        let nl = perm.len() as u32;
        perm.extend_from_slice(&right_ids);
        let t = PartitionTree::from_parts(
            vec![
                PartitionNode::Leaf { start: 0, len: nl },
                PartitionNode::Leaf {
                    start: nl,
                    len: 16 - nl,
                },
                PartitionNode::Internal {
                    sep,
                    size: 16,
                    left: 0,
                    right: 1,
                },
            ],
            perm,
        );
        let ball = Ball::new(Point::from([2.0, 2.0]), 1.5);
        let out = march_balls(&t, std::slice::from_ref(&ball), 100);
        for (i, p) in pts.iter().enumerate() {
            if ball.contains(p) {
                assert!(
                    out.candidates[0].contains(&(i as u32)),
                    "point {i} in ball but not a candidate"
                );
            }
        }
    }

    #[test]
    fn abort_on_active_limit() {
        let t = line_tree();
        let balls: Vec<Ball<1>> = (0..50)
            .map(|i| Ball::new(Point::from([i as f64 * 0.1]), 50.0))
            .collect();
        let out = march_balls(&t, &balls, 60);
        assert!(out.aborted, "50 huge balls duplicate past 60 actives");
    }

    #[test]
    fn empty_ball_batch() {
        let t = line_tree();
        let out = march_balls(&t, &[], 10);
        assert!(!out.aborted);
        assert_eq!(out.levels, 0);
        assert!(out.candidates.is_empty());
        assert_eq!(out.pruned, 0);
    }

    /// `line_tree` with correct per-subtree boxes (points 0..8 at x = i).
    fn line_tree_with_bounds() -> PartitionTree<1> {
        let t = line_tree();
        let span = |a: f64, b: f64| Aabb {
            lo: Point::<1>::from([a]),
            hi: Point::from([b]),
        };
        let bounds = vec![
            span(0.0, 1.0),
            span(2.0, 3.0),
            span(0.0, 3.0),
            span(4.0, 5.0),
            span(6.0, 7.0),
            span(4.0, 7.0),
            span(0.0, 7.0),
        ];
        let mut perm = Vec::new();
        t.collect_point_ids(&mut perm);
        let nodes = vec![
            PartitionNode::Leaf { start: 0, len: 2 },
            PartitionNode::Leaf { start: 2, len: 2 },
            clone_internal(t.node(2)),
            PartitionNode::Leaf { start: 4, len: 2 },
            PartitionNode::Leaf { start: 6, len: 2 },
            clone_internal(t.node(5)),
            clone_internal(t.node(6)),
        ];
        PartitionTree::from_parts_with_bounds(nodes, perm, bounds)
    }

    fn clone_internal(n: &PartitionNode<1>) -> PartitionNode<1> {
        match n {
            PartitionNode::Internal {
                sep,
                size,
                left,
                right,
            } => PartitionNode::Internal {
                sep: *sep,
                size: *size,
                left: *left,
                right: *right,
            },
            PartitionNode::Leaf { start, len } => PartitionNode::Leaf {
                start: *start,
                len: *len,
            },
        }
    }

    #[test]
    fn pruned_march_skips_unreachable_boxes_but_keeps_in_ball_points() {
        let t = line_tree_with_bounds();
        // Ball at x=4.5, r=1: the root's halfspace predicates send it both
        // ways, but the left subtree's box [0,3] is 1.5 away — pruned.
        let balls = vec![Ball::new(Point::<1>::from([4.5]), 1.0)];
        let pruned = march_balls(&t, &balls, 100);
        let full = march_balls_unpruned(&t, &balls, 100);
        assert!(!pruned.aborted && !full.aborted);
        assert!(pruned.pruned > 0, "left subtree should be pruned");
        assert_eq!(full.pruned, 0, "unpruned march never prunes");
        assert!(pruned.total_steps < full.total_steps);
        // Every candidate the pruned march keeps is also in the full set,
        // and every *in-ball* point survives the pruning.
        for c in &pruned.candidates[0] {
            assert!(full.candidates[0].contains(c));
        }
        for i in 0u32..8 {
            let p = Point::<1>::from([i as f64]);
            if balls[0].contains(&p) {
                assert!(pruned.candidates[0].contains(&i), "lost in-ball point {i}");
            }
        }
    }

    #[test]
    fn bounds_absent_means_no_pruning() {
        let t = line_tree();
        assert!(t.bounds().is_none());
        let balls = vec![Ball::new(Point::<1>::from([4.5]), 1.0)];
        let out = march_balls(&t, &balls, 100);
        assert_eq!(out.pruned, 0);
    }

    /// A mixed batch exercising every march behavior on `line_tree`: tiny
    /// balls (one leaf), straddlers, huge balls (every leaf), empty balls.
    fn mixed_balls() -> Vec<Ball<1>> {
        (0..40)
            .map(|i| {
                let x = (i % 11) as f64 * 0.8 - 1.0;
                let r = match i % 4 {
                    0 => 0.3,
                    1 => 1.5,
                    2 => 9.0,
                    _ => 0.0,
                };
                Ball::new(Point::<1>::from([x]), r)
            })
            .collect()
    }

    #[test]
    fn chunked_march_matches_monolithic_on_success() {
        for (t, label) in [(line_tree(), "plain"), (line_tree_with_bounds(), "boxed")] {
            let balls = mixed_balls();
            let serial = march_balls(&t, &balls, 1000);
            assert!(!serial.aborted);
            for chunk in [1usize, 3, 7, 16, 40, 100] {
                let par = march_arena_chunked(
                    &t.nodes,
                    t.root(),
                    &t.perm,
                    &balls,
                    1000,
                    t.bounds.as_deref(),
                    chunk,
                );
                assert!(!par.aborted, "{label} chunk {chunk}");
                assert_eq!(par.candidates, serial.candidates, "{label} chunk {chunk}");
                assert_eq!(
                    par.max_active_per_level, serial.max_active_per_level,
                    "{label} chunk {chunk}"
                );
                assert_eq!(par.levels, serial.levels, "{label} chunk {chunk}");
                assert_eq!(par.total_steps, serial.total_steps, "{label} chunk {chunk}");
                assert_eq!(par.pruned, serial.pruned, "{label} chunk {chunk}");
            }
        }
    }

    #[test]
    fn chunked_march_abort_accounting_matches_monolithic() {
        // 50 huge balls against limit 60: the frontier doubles past the
        // limit mid-march, and every accounting field the meter ingests
        // (total_steps, pruned, max_active, levels) must equal the
        // monolithic abort's, whatever the chunking.
        let t = line_tree();
        let balls: Vec<Ball<1>> = (0..50)
            .map(|i| Ball::new(Point::from([i as f64 * 0.1]), 50.0))
            .collect();
        let serial = march_balls(&t, &balls, 60);
        assert!(serial.aborted);
        for chunk in [1usize, 4, 13, 50] {
            let par = march_arena_chunked(&t.nodes, t.root(), &t.perm, &balls, 60, None, chunk);
            assert!(par.aborted, "chunk {chunk}");
            assert_eq!(
                par.max_active_per_level, serial.max_active_per_level,
                "chunk {chunk}"
            );
            assert_eq!(par.levels, serial.levels, "chunk {chunk}");
            assert_eq!(par.total_steps, serial.total_steps, "chunk {chunk}");
            assert_eq!(par.pruned, serial.pruned, "chunk {chunk}");
        }
        // Level-0 abort: more balls than the limit allows before any step.
        let par0 = march_arena_chunked(&t.nodes, t.root(), &t.perm, &balls, 10, None, 7);
        let ser0 = march_balls(&t, &balls, 10);
        assert!(par0.aborted && ser0.aborted);
        assert_eq!(par0.total_steps, ser0.total_steps);
        assert_eq!(par0.max_active_per_level, ser0.max_active_per_level);
        assert_eq!(par0.levels, ser0.levels);
    }

    #[test]
    fn partition_in_place_par_matches_serial_layout() {
        let n = (super::PARTITION_PAR_CUTOFF + 77) as u32;
        let pred = |i: u32| !i.wrapping_mul(0x9E3779B9).is_multiple_of(3);
        let mut a: Vec<u32> = (0..n).collect();
        let mut b = a.clone();
        let nl_a = partition_in_place(&mut a, pred);
        let nl_b = partition_in_place_par(&mut b, pred);
        assert_eq!(nl_a, nl_b);
        assert_eq!(a, b, "flagged partition must replay the serial walk");
        // Below the cutoff the parallel entry point is the serial walk.
        let mut c: Vec<u32> = (0..100).collect();
        let mut d = c.clone();
        assert_eq!(
            partition_in_place(&mut c, pred),
            partition_in_place_par(&mut d, pred)
        );
        assert_eq!(c, d);
    }
}
