//! Offline drop-in subset of the `proptest` API.
//!
//! Covers exactly what the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), range and array
//! strategies, `prop_map`, [`collection::vec`], [`any`], and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case
//! reports its deterministic case number, which — together with the fixed
//! per-case seeds — is enough to reproduce under a debugger. Cases are
//! generated from ChaCha8 streams seeded by the case index, so runs are
//! identical on every platform and thread count.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::ops::Range;

/// RNG handed to strategies.
pub type TestRng = ChaCha8Rng;

/// Deterministic per-case RNG.
pub fn test_rng(case: u64) -> TestRng {
    // Offset so case 0 does not collide with common user seeds.
    ChaCha8Rng::seed_from_u64(case.wrapping_mul(0x9E3779B97F4A7C15) ^ 0x50524F50)
}

/// Runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; draw a fresh case.
    Reject,
    /// `prop_assert!`-style failure with a message.
    Fail(String),
}

impl TestCaseError {
    /// Failure with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// A value generator.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(usize, u32, u64, i32, i64, f64);

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Types with a canonical "any value" strategy (subset of `Arbitrary`).
pub trait ArbitraryValue: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}
impl ArbitraryValue for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}
impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `Vec` strategy with element strategy `elem` and length range `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut accepted = 0u32;
                let mut case: u64 = 0;
                while accepted < cfg.cases {
                    assert!(
                        case < cfg.cases as u64 * 16 + 1024,
                        "too many prop_assume! rejections ({} cases tried, {} accepted)",
                        case,
                        accepted
                    );
                    let mut __rng = $crate::test_rng(case);
                    case += 1;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property failed at case {}: {}", case - 1, msg)
                        }
                    }
                }
            }
        )*
    };
}

/// Assert inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Reject the current case (draw a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, ArbitraryValue, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::Rng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn arrays_and_map(p in [0.0f64..1.0, 0.0f64..1.0].prop_map(|[a, b]| a + b)) {
            prop_assert!((0.0..2.0).contains(&p));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u32..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn assume_rejects_and_still_terminates(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5)
            .map(|c| crate::test_rng(c).gen_range(0..1000))
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| crate::test_rng(c).gen_range(0..1000))
            .collect();
        assert_eq!(a, b);
    }
}
