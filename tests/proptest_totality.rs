//! Totality fuzz suite: every public entry point, driven with arbitrary
//! inputs — raw-bit-pattern coordinates (NaN, ±inf, subnormals, huge
//! magnitudes), `k` from 0 through past `n`, duplicates, empty clouds —
//! must return a typed `SepdcError` or a correct result. No call may
//! panic, and (the release-mode regression of this PR) no call may hang on
//! a separator that never shrinks its subset.

use proptest::prelude::*;
use sepdc::core::{
    try_brute_force_knn, try_kdtree_all_knn, try_parallel_knn, try_simple_parallel_knn,
    KnnDcConfig, QueryTree, QueryTreeConfig, SepdcError,
};
use sepdc::geom::{Ball, Point};

/// Any f64 bit pattern: NaN, infinities, subnormals, huge magnitudes.
fn raw_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

/// Mostly-benign coordinate with occasional hostile bit patterns, so the
/// same cloud strategy exercises both the happy path and the reject path.
fn hostile_coord() -> impl Strategy<Value = f64> {
    (any::<u64>(), -8i32..8).prop_map(|(bits, grid)| {
        if bits % 5 == 0 {
            f64::from_bits(bits)
        } else {
            grid as f64 * 0.5
        }
    })
}

fn hostile_cloud(max: usize) -> impl Strategy<Value = Vec<Point<2>>> {
    proptest::collection::vec(
        [hostile_coord(), hostile_coord()].prop_map(Point::from),
        0..max,
    )
}

/// The error the validation layer must report for `(points, k)`, if any:
/// `InvalidK` wins, then the first non-finite point.
fn expected_error<const D: usize>(points: &[Point<D>], k: usize) -> Option<SepdcError> {
    if k == 0 {
        return Some(SepdcError::InvalidK { k });
    }
    points
        .iter()
        .position(|p| !p.is_finite())
        .map(|idx| Some(SepdcError::NonFinitePoint { idx }))
        .unwrap_or(None)
}

fn check_entry_point(
    result: Result<sepdc::core::KnnResult, SepdcError>,
    points: &[Point<2>],
    k: usize,
    who: &str,
) -> Result<(), TestCaseError> {
    match (result, expected_error(points, k)) {
        (Ok(knn), None) => {
            prop_assert!(knn.check_invariants().is_ok(), "{who}: invariants");
            prop_assert_eq!(knn.len(), points.len(), "{}: length", who);
            // k ≥ n yields short lists whose radius stays unbounded.
            if k >= points.len() {
                for i in 0..knn.len() {
                    prop_assert_eq!(
                        knn.radius_sq(i),
                        f64::INFINITY,
                        "{}: short list radius",
                        who
                    );
                }
            }
            Ok(())
        }
        (Err(e), Some(want)) => {
            prop_assert_eq!(e, want, "{}: wrong error", who);
            Ok(())
        }
        (Ok(_), Some(want)) => {
            prop_assert!(false, "{who}: expected {want:?}, got Ok");
            Ok(())
        }
        (Err(e), None) => {
            prop_assert!(false, "{who}: unexpected error {e:?} on valid input");
            Ok(())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All four k-NN entry points are total over hostile clouds and the
    /// full `k ∈ {0, …, n + 2}` range.
    #[test]
    fn knn_entry_points_are_total(
        pts in hostile_cloud(120),
        k_off in 0usize..6,
        seed in 0u64..500,
    ) {
        // Map k over the interesting boundary: 0, 1, …, n-1, n, n+1, n+2.
        let k = k_off.min(pts.len() + 2);
        let cfg = KnnDcConfig::new(k).with_seed(seed);
        check_entry_point(
            try_parallel_knn::<2, 3>(&pts, &cfg).map(|o| o.knn), &pts, k, "parallel")?;
        check_entry_point(
            try_simple_parallel_knn::<2, 3>(&pts, &cfg).map(|o| o.knn), &pts, k, "simple")?;
        check_entry_point(try_brute_force_knn(&pts, k), &pts, k, "brute")?;
        check_entry_point(try_kdtree_all_knn(&pts, k), &pts, k, "kdtree")?;
    }

    /// On fully valid inputs from the same hostile strategy (the cases
    /// where no coordinate happened to be poisoned), the divide-and-conquer
    /// algorithms still agree with the oracle — hardening must not change
    /// answers.
    #[test]
    fn valid_subset_still_matches_oracle(
        pts in hostile_cloud(100),
        k in 1usize..4,
        seed in 0u64..200,
    ) {
        // Keep only benign coordinates so the oracle comparison is exact.
        let pts: Vec<Point<2>> =
            pts.into_iter().filter(|p| p.is_finite() && p.norm() < 1e6).collect();
        let cfg = KnnDcConfig::new(k).with_seed(seed);
        let oracle = try_brute_force_knn(&pts, k).unwrap();
        let par = try_parallel_knn::<2, 3>(&pts, &cfg).unwrap();
        prop_assert!(par.knn.same_distances(&oracle, 1e-9).is_ok(),
            "{:?}", par.knn.same_distances(&oracle, 1e-9));
        let simple = try_simple_parallel_knn::<2, 3>(&pts, &cfg).unwrap();
        prop_assert!(simple.knn.same_distances(&oracle, 1e-9).is_ok(),
            "{:?}", simple.knn.same_distances(&oracle, 1e-9));
    }

    /// Config tunables drawn from raw bit patterns either validate or are
    /// rejected as `InvalidConfig`/`InvalidK` — never a panic, never a hang.
    #[test]
    fn arbitrary_configs_are_total(
        mu in raw_f64(),
        eta in raw_f64(),
        punt in raw_f64(),
        march in raw_f64(),
        k in 0usize..4,
        seed in 0u64..100,
    ) {
        let pts: Vec<Point<2>> = (0..60)
            .map(|i| Point::from([(i % 8) as f64, (i / 8) as f64]))
            .collect();
        let cfg = KnnDcConfig {
            mu_epsilon: mu,
            eta,
            punt_slack: punt,
            marching_slack: march,
            ..KnnDcConfig::new(k).with_seed(seed)
        };
        match try_parallel_knn::<2, 3>(&pts, &cfg) {
            Ok(out) => {
                // Accepted config ⇒ the tunables were in range and the
                // result is still correct.
                prop_assert!(cfg.validate().is_ok());
                let oracle = try_brute_force_knn(&pts, k).unwrap();
                prop_assert!(out.knn.same_distances(&oracle, 1e-9).is_ok());
            }
            Err(SepdcError::InvalidK { .. }) => prop_assert_eq!(k, 0),
            Err(SepdcError::InvalidConfig { .. }) => prop_assert!(cfg.validate().is_err()),
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }

    /// The query structure is total over arbitrary ball systems: bad balls
    /// are rejected with their index, good systems answer queries.
    #[test]
    fn query_tree_build_is_total(
        raw in proptest::collection::vec((raw_f64(), raw_f64(), raw_f64()), 0..80),
        seed in 0u64..100,
    ) {
        let balls: Vec<Ball<2>> = raw
            .iter()
            .map(|&(x, y, r)| {
                // Construct through the public fields: Ball::new validates,
                // but adversarial callers can always build the raw struct.
                let mut b = Ball::new(Point::origin(), 0.0);
                b.center = Point::from([x, y]);
                b.radius = r;
                b
            })
            .collect();
        let expected = balls
            .iter()
            .position(|b| !b.center.is_finite() || !b.radius.is_finite() || b.radius < 0.0);
        match QueryTree::try_build::<3>(&balls, QueryTreeConfig::default(), seed) {
            Ok(tree) => {
                prop_assert!(expected.is_none(), "accepted bad ball {expected:?}");
                prop_assert_eq!(tree.len(), balls.len());
                // A covering query agrees with the linear scan.
                let probe = Point::from([0.25, -0.5]);
                let mut fast = tree.covering(&probe);
                fast.sort_unstable();
                let mut slow: Vec<u32> = balls
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| b.contains(&probe))
                    .map(|(i, _)| i as u32)
                    .collect();
                slow.sort_unstable();
                prop_assert_eq!(fast, slow);
            }
            Err(SepdcError::NonFiniteBall { idx }) => {
                prop_assert_eq!(Some(idx), expected, "wrong ball index");
            }
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }
}
