//! Benign point distributions.

use rand::Rng;
use sepdc_geom::Point;

/// Standard normal via the Marsaglia polar method.
pub fn normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let x: f64 = rng.gen_range(-1.0..1.0);
        let y: f64 = rng.gen_range(-1.0..1.0);
        let s = x * x + y * y;
        if s > 0.0 && s < 1.0 {
            return x * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// `n` points uniform in the unit cube `[0, 1)^D`.
pub fn uniform_cube<const D: usize, R: Rng>(n: usize, rng: &mut R) -> Vec<Point<D>> {
    (0..n)
        .map(|_| {
            let mut c = [0.0; D];
            for v in &mut c {
                *v = rng.gen_range(0.0..1.0);
            }
            Point(c)
        })
        .collect()
}

/// `n` points uniform in the unit ball (rejection sampling).
pub fn uniform_ball<const D: usize, R: Rng>(n: usize, rng: &mut R) -> Vec<Point<D>> {
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let mut c = [0.0; D];
        for v in &mut c {
            *v = rng.gen_range(-1.0..1.0);
        }
        let p = Point(c);
        if p.norm_sq() <= 1.0 {
            out.push(p);
        }
    }
    out
}

/// `n` points uniform on the unit sphere surface (normalized Gaussians).
///
/// Hyperplane-adversarial: any flat cut near the center crosses a band
/// containing `Θ(√n)`–`Θ(n)` neighborhood balls depending on `D`, while the
/// set is perfectly sphere-separable.
pub fn sphere_shell<const D: usize, R: Rng>(n: usize, rng: &mut R) -> Vec<Point<D>> {
    (0..n)
        .map(|_| loop {
            let mut c = [0.0; D];
            for v in &mut c {
                *v = normal(rng);
            }
            if let Some(u) = Point(c).normalized(1e-9) {
                break u;
            }
        })
        .collect()
}

/// `n` points in `clusters` Gaussian blobs with standard deviation `sigma`,
/// centers uniform in the unit cube.
pub fn gaussian_clusters<const D: usize, R: Rng>(
    n: usize,
    clusters: usize,
    sigma: f64,
    rng: &mut R,
) -> Vec<Point<D>> {
    assert!(clusters > 0, "need at least one cluster");
    let centers: Vec<Point<D>> = uniform_cube(clusters, rng);
    (0..n)
        .map(|i| {
            let c = centers[i % clusters];
            let mut p = c;
            for j in 0..D {
                p[j] += sigma * normal(rng);
            }
            p
        })
        .collect()
}

/// `n` points on an integer grid, each jittered by `jitter` (fraction of
/// the unit cell). The grid side is `ceil(n^(1/D))`; exactly `n` points are
/// returned in row-major order.
pub fn jittered_grid<const D: usize, R: Rng>(n: usize, jitter: f64, rng: &mut R) -> Vec<Point<D>> {
    let side = (n as f64).powf(1.0 / D as f64).ceil() as usize;
    let side = side.max(1);
    let mut out = Vec::with_capacity(n);
    'outer: for idx in 0.. {
        // Decompose idx into D grid coordinates.
        let mut rem = idx;
        let mut c = [0.0; D];
        for v in c.iter_mut() {
            *v = (rem % side) as f64;
            rem /= side;
        }
        if rem > 0 {
            break 'outer; // exhausted the grid (only when side^D < n)
        }
        for v in &mut c {
            *v += jitter * rng.gen_range(-0.5..0.5);
        }
        out.push(Point(c));
        if out.len() == n {
            break;
        }
    }
    // If the grid was too small (can't happen with ceil, but stay total),
    // pad with uniform points in the grid's bounding box.
    while out.len() < n {
        let mut c = [0.0; D];
        for v in &mut c {
            *v = rng.gen_range(0.0..side as f64);
        }
        out.push(Point(c));
    }
    out
}

/// `n` points uniform in a thin annulus (`r_inner..r_outer`) — between the
/// shell and the ball in difficulty.
pub fn annulus<const D: usize, R: Rng>(
    n: usize,
    r_inner: f64,
    r_outer: f64,
    rng: &mut R,
) -> Vec<Point<D>> {
    assert!(0.0 <= r_inner && r_inner < r_outer);
    let shell = sphere_shell::<D, R>(n, rng);
    shell
        .into_iter()
        .map(|u| {
            // Radius with correct density in D dimensions.
            let t: f64 = rng.gen_range(0.0..1.0);
            let rd = (r_inner.powi(D as i32)
                + t * (r_outer.powi(D as i32) - r_inner.powi(D as i32)))
            .powf(1.0 / D as f64);
            u * rd
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn uniform_cube_in_bounds() {
        let pts = uniform_cube::<3, _>(500, &mut rng(1));
        for p in pts {
            for i in 0..3 {
                assert!((0.0..1.0).contains(&p[i]));
            }
        }
    }

    #[test]
    fn uniform_ball_in_ball() {
        let pts = uniform_ball::<4, _>(300, &mut rng(2));
        for p in pts {
            assert!(p.norm_sq() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn sphere_shell_on_sphere() {
        let pts = sphere_shell::<3, _>(300, &mut rng(3));
        for p in pts {
            assert!((p.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn clusters_are_clustered() {
        let pts = gaussian_clusters::<2, _>(800, 4, 0.01, &mut rng(4));
        // Mean nearest-neighbor distance should be far below the uniform
        // expectation for 800 points in the unit square (~0.018).
        let mut total = 0.0;
        for (i, p) in pts.iter().enumerate().take(100) {
            let mut best = f64::INFINITY;
            for (j, q) in pts.iter().enumerate() {
                if i != j {
                    best = best.min(p.dist_sq(q));
                }
            }
            total += best.sqrt();
        }
        assert!(total / 100.0 < 0.02, "clusters look uniform");
    }

    #[test]
    fn grid_has_expected_extent() {
        let pts = jittered_grid::<2, _>(100, 0.0, &mut rng(5));
        assert_eq!(pts.len(), 100);
        // 10x10 grid: max coordinate 9.
        let max = pts
            .iter()
            .map(|p| p[0].max(p[1]))
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(max, 9.0);
    }

    #[test]
    fn grid_nonsquare_count() {
        let pts = jittered_grid::<2, _>(7, 0.0, &mut rng(6));
        assert_eq!(pts.len(), 7);
    }

    #[test]
    fn annulus_radii_in_range() {
        let pts = annulus::<2, _>(400, 0.8, 1.0, &mut rng(7));
        for p in pts {
            let r = p.norm();
            assert!((0.8 - 1e-9..=1.0 + 1e-9).contains(&r), "radius {r}");
        }
    }

    #[test]
    fn normal_mean_near_zero() {
        let mut r = rng(8);
        let mean: f64 = (0..10_000).map(|_| normal(&mut r)).sum::<f64>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }
}
