//! Property-based parity tests for the SoA blocked distance kernels and
//! soundness tests for the AABB-pruned Fast-Correction march.
//!
//! The kernels in `sepdc::geom::soa` claim **bitwise** parity with the
//! scalar reference `Point::dist_sq` for every input whose distance is a
//! number — not approximate agreement. These tests pin that down with
//! `to_bits` equality across dimensions 1..=8, with duplicate points,
//! duplicate ids, and raw-bit coordinates that include NaNs, infinities,
//! and subnormals. When the distance is NaN both sides must say NaN, but
//! the payload bits are exempt — see [`same_dist`].
//!
//! The pruning tests pin the conservativeness of the ball-vs-AABB
//! rejection: a pruned subtree can never contain an in-ball candidate, so
//! the pruned and unpruned marches agree on every candidate inside the
//! ball — and the end-to-end neighbor graph is byte-identical.

use proptest::prelude::*;
use sepdc::core::{brute_force_knn, march_balls, march_balls_unpruned, parallel_knn, KnnDcConfig};
use sepdc::geom::ball::Ball;
use sepdc::geom::point::Point;
use sepdc::geom::soa::{SoaBalls, SoaPoints};

/// Coordinates as raw bit patterns: mostly finite grid values (duplicates
/// and exact ties), with a tail of special values (NaN, ±inf, -0.0,
/// subnormal) and fully random bit patterns. The vendored proptest has no
/// `prop_oneof`, so the choice is a mapped selector tuple.
fn raw_coord() -> impl Strategy<Value = f64> {
    (0u32..12, any::<u64>()).prop_map(|(sel, bits)| match sel {
        0..=5 => ((bits % 32) as f64 - 16.0) * 0.5, // coarse grid
        6 => f64::NAN,
        7 => f64::INFINITY,
        8 => f64::NEG_INFINITY,
        9 => -0.0,
        10 => f64::MIN_POSITIVE / 2.0, // subnormal
        _ => f64::from_bits(bits),     // arbitrary raw bits
    })
}

/// Finite coarse-grid coordinate (for the end-to-end pruning tests, which
/// go through validated entry points).
fn coarse_coord() -> impl Strategy<Value = f64> {
    (-8i32..8).prop_map(|x| x as f64 * 0.5)
}

/// Parity predicate: bitwise equality whenever the scalar result is a
/// number (finite, ±0, subnormal, or +inf — a sum of squares is never
/// -inf), and NaN ⇔ NaN otherwise. NaN *payload* bits are exempt: IEEE-754
/// leaves NaN propagation through `-`/`*`/`+` implementation-defined, and
/// LLVM may commute the (mathematically commutative) adds differently in
/// the two separately compiled loops, so which input NaN's payload survives
/// is not stable. Every repo entry point rejects non-finite coordinates, so
/// the determinism contract only ever exercises the bitwise half.
fn same_dist(kernel: f64, scalar: f64) -> bool {
    (kernel.is_nan() && scalar.is_nan()) || kernel.to_bits() == scalar.to_bits()
}

/// Parity of every kernel against the scalar reference, for one dimension.
/// `vals` is the flattened coordinate buffer (length `n * D`).
fn check_parity<const D: usize>(vals: &[f64], q_vals: &[f64]) -> Result<(), TestCaseError> {
    let n = vals.len() / D;
    let pts: Vec<Point<D>> = (0..n)
        .map(|i| Point::from(std::array::from_fn(|d| vals[i * D + d])))
        .collect();
    let q: Point<D> = Point::from(std::array::from_fn(|d| q_vals[d]));
    let soa = SoaPoints::from_points(&pts);

    // Gather kernel: reversed ids followed by the forward ids — duplicate
    // ids are legal and must produce duplicate (identical) outputs.
    let mut ids: Vec<u32> = (0..n as u32).rev().collect();
    ids.extend(0..n as u32);
    let mut out = vec![0.0; ids.len()];
    soa.dist_sq_gather(&q, &ids, &mut out);
    for (j, &i) in ids.iter().enumerate() {
        prop_assert!(
            same_dist(out[j], q.dist_sq(&pts[i as usize])),
            "gather D={} id={}",
            D,
            i
        );
    }

    // Contiguous range kernel, every (start, len) combination.
    for start in 0..n {
        let mut out = vec![0.0; n - start];
        soa.dist_sq_range(&q, start, &mut out);
        for (j, &d) in out.iter().enumerate() {
            prop_assert!(
                same_dist(d, q.dist_sq(&pts[start + j])),
                "range D={} start={} j={}",
                D,
                start,
                j
            );
        }
    }

    // Scalar tail kernel.
    for (i, p) in pts.iter().enumerate() {
        prop_assert!(same_dist(soa.dist_sq_to(&q, i), q.dist_sq(p)));
    }
    Ok(())
}

/// One flattened coordinate buffer spanning lengths around the BLOCK=8
/// boundary (0..=3 full blocks plus tails).
fn flat_coords(d: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(raw_coord(), 0..(27 * d + 1)).prop_map(move |mut v| {
        v.truncate((v.len() / d) * d);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn kernels_match_scalar_bitwise_d1(vals in flat_coords(1), q in proptest::collection::vec(raw_coord(), 1..2)) {
        check_parity::<1>(&vals, &q)?;
    }

    #[test]
    fn kernels_match_scalar_bitwise_d2(vals in flat_coords(2), q in proptest::collection::vec(raw_coord(), 2..3)) {
        check_parity::<2>(&vals, &q)?;
    }

    #[test]
    fn kernels_match_scalar_bitwise_d3(vals in flat_coords(3), q in proptest::collection::vec(raw_coord(), 3..4)) {
        check_parity::<3>(&vals, &q)?;
    }

    #[test]
    fn kernels_match_scalar_bitwise_d4(vals in flat_coords(4), q in proptest::collection::vec(raw_coord(), 4..5)) {
        check_parity::<4>(&vals, &q)?;
    }

    #[test]
    fn kernels_match_scalar_bitwise_d5(vals in flat_coords(5), q in proptest::collection::vec(raw_coord(), 5..6)) {
        check_parity::<5>(&vals, &q)?;
    }

    #[test]
    fn kernels_match_scalar_bitwise_d6(vals in flat_coords(6), q in proptest::collection::vec(raw_coord(), 6..7)) {
        check_parity::<6>(&vals, &q)?;
    }

    #[test]
    fn kernels_match_scalar_bitwise_d7(vals in flat_coords(7), q in proptest::collection::vec(raw_coord(), 7..8)) {
        check_parity::<7>(&vals, &q)?;
    }

    #[test]
    fn kernels_match_scalar_bitwise_d8(vals in flat_coords(8), q in proptest::collection::vec(raw_coord(), 8..9)) {
        check_parity::<8>(&vals, &q)?;
    }

    /// The batched ball-cover filter is the scalar `contains` /
    /// `contains_interior` filter, in the same (leaf) order.
    #[test]
    fn ball_cover_filter_matches_scalar(
        vals in flat_coords(2),
        radii_raw in proptest::collection::vec(raw_coord(), 0..32),
        probe in proptest::collection::vec(raw_coord(), 2..3),
    ) {
        let n = (vals.len() / 2).min(radii_raw.len());
        // `Ball::new` rejects non-finite radii (validated everywhere in the
        // repo), so sanitize the raw radii; centers stay raw-bit — a NaN
        // center must simply fail both cover predicates.
        let balls: Vec<Ball<2>> = (0..n)
            .map(|i| {
                let r = radii_raw[i].abs();
                let r = if r.is_finite() { r } else { 1.5 };
                Ball::new(Point::from([vals[2 * i], vals[2 * i + 1]]), r)
            })
            .collect();
        let soa = SoaBalls::from_balls(&balls);
        let p = Point::from([probe[0], probe[1]]);
        let ids: Vec<u32> = (0..n as u32).collect();
        let mut scratch = Vec::new();
        for open in [false, true] {
            let mut fast = Vec::new();
            soa.filter_covering_into(&p, &ids, open, &mut scratch, &mut fast);
            let slow: Vec<u32> = ids
                .iter()
                .copied()
                .filter(|&i| {
                    let b = &balls[i as usize];
                    if open { b.contains_interior(&p) } else { b.contains(&p) }
                })
                .collect();
            prop_assert_eq!(&fast, &slow, "open={}", open);
        }
    }

    /// AABB pruning soundness, end to end: the pruned tree's march agrees
    /// with the unpruned march on every in-ball candidate, only ever visits
    /// fewer (ball, node) pairs, and the k-NN output itself is identical to
    /// the oracle (pruning changes accounting, never answers).
    #[test]
    fn pruned_march_is_sound(
        pts in proptest::collection::vec([coarse_coord(), coarse_coord()].prop_map(Point::from), 2..160),
        k in 1usize..4,
        seed in 0u64..500,
        br in 0.1f64..4.0,
        bc in [coarse_coord(), coarse_coord()].prop_map(Point::from),
    ) {
        let cfg = KnnDcConfig::new(k).with_seed(seed);
        let out = parallel_knn::<2, 3>(&pts, &cfg);

        // The neighbor graph is byte-identical to the oracle's distances.
        let oracle = brute_force_knn(&pts, k);
        prop_assert!(out.knn.same_distances(&oracle, 1e-9).is_ok());

        // March an arbitrary ball down the output tree both ways.
        let balls = vec![Ball::new(bc, br)];
        let pruned = march_balls(&out.tree, &balls, usize::MAX);
        let full = march_balls_unpruned(&out.tree, &balls, usize::MAX);
        prop_assert!(!pruned.aborted && !full.aborted);
        prop_assert!(pruned.total_steps <= full.total_steps);
        prop_assert_eq!(full.pruned, 0);

        // Candidate subset property …
        let mut pc = pruned.candidates[0].clone();
        let mut fc = full.candidates[0].clone();
        pc.sort_unstable();
        fc.sort_unstable();
        for id in &pc {
            prop_assert!(fc.binary_search(id).is_ok(), "pruned march invented candidate {id}");
        }
        // … and every in-ball candidate of the unpruned march survives
        // pruning: a pruned subtree's box misses the ball, so it cannot
        // hold a point inside the ball.
        let r_sq = br * br;
        for &id in &fc {
            if bc.dist_sq(&pts[id as usize]) <= r_sq {
                prop_assert!(
                    pc.binary_search(&id).is_ok(),
                    "pruning dropped in-ball candidate {id}"
                );
            }
        }
    }
}
