//! Stereographic lifts and the MTTV conformal normalization.
//!
//! The Miller–Teng–Thurston–Vavasis separator construction works on the unit
//! sphere `S^D ⊂ R^{D+1}`:
//!
//! 1. lift the input points `p ∈ R^D` to `S^D` by the stereographic map Π;
//! 2. compute a centerpoint `z` of the lifted points;
//! 3. apply an orthogonal map `Q` taking `z/|z|` to the last axis, then the
//!    conformal dilation `D_α` with `α = sqrt((1-|z|)/(1+|z|))`, after which
//!    the origin of `R^{D+1}` is an approximate centerpoint of the images;
//! 4. cut with a uniform random great circle `{x : g·x = 0}`.
//!
//! This module implements Π, Π⁻¹, `D_α`, and — crucially — the exact
//! algebraic pull-back of the random great circle to a [`Separator`] in the
//! original space. The pull-back of `{x : g·x = 0}` under
//! `w(p) = Π(α·Π⁻¹(Q·Π(p)))` reduces (see the derivation in the code) to a
//! single linear condition `m·Π(p) = b`, which unfolds to a sphere or — when
//! the surface passes through the projection pole — a hyperplane in `R^D`.

use crate::halfspace::Hyperplane;
use crate::matrix::Rotation;
use crate::point::Point;
use crate::shape::Separator;
use crate::sphere::Sphere;

/// Stereographic lift `Π : R^D -> S^D ⊂ R^E`, `E = D + 1`:
/// `Π(p) = (2p, |p|² - 1) / (|p|² + 1)`.
///
/// The image omits only the north pole `(0, …, 0, 1)`.
pub fn lift<const D: usize, const E: usize>(p: &Point<D>) -> Point<E> {
    assert_eq!(E, D + 1, "lift requires E = D + 1");
    let n2 = p.norm_sq();
    let denom = n2 + 1.0;
    let mut c = [0.0; E];
    for i in 0..D {
        c[i] = 2.0 * p[i] / denom;
    }
    c[D] = (n2 - 1.0) / denom;
    Point(c)
}

/// Inverse stereographic projection from the north pole:
/// `Π⁻¹(x) = x̂ / (1 - x_{D+1})` for `x ∈ S^D`.
///
/// Returns `None` when `x` is within `tol` of the pole (image at infinity).
pub fn unlift<const D: usize, const E: usize>(x: &Point<E>, tol: f64) -> Option<Point<D>> {
    assert_eq!(E, D + 1, "unlift requires E = D + 1");
    let denom = 1.0 - x[D];
    if denom.abs() <= tol {
        return None;
    }
    let mut c = [0.0; D];
    for i in 0..D {
        c[i] = x[i] / denom;
    }
    Some(Point(c))
}

/// The conformal normalization `w(p) = D_α(Q · Π(p))` of MTTV.
///
/// `E` must equal `D + 1`. Built from the centerpoint of the *lifted* input
/// points; after `apply`, the origin of `R^E` is an approximate centerpoint
/// of the images, so a uniform random great circle splits the point set with
/// ratio at most `(D+1)/(D+2) + ε` in expectation over the sample.
#[derive(Clone, Debug)]
pub struct ConformalMap<const D: usize, const E: usize> {
    rotation: Rotation<E>,
    /// Dilation parameter `α = sqrt((1-θ)/(1+θ))`, `θ = |centerpoint|`.
    alpha: f64,
}

impl<const D: usize, const E: usize> ConformalMap<D, E> {
    /// Build the map from a centerpoint `z` of the lifted points
    /// (`z` in the open unit ball of `R^E`).
    ///
    /// # Panics
    /// Panics if `E != D + 1` or `|z| >= 1`.
    pub fn from_centerpoint(z: &Point<E>) -> Self {
        assert_eq!(E, D + 1, "ConformalMap requires E = D + 1");
        let theta = z.norm();
        assert!(
            theta < 1.0,
            "centerpoint must lie strictly inside the unit ball, |z| = {theta}"
        );
        let rotation = match z.normalized(1e-12) {
            Some(dir) => Rotation::to_last_axis(&dir),
            // Centerpoint at the origin: already normalized, no rotation
            // and no dilation needed.
            None => Rotation::identity(),
        };
        let alpha = ((1.0 - theta) / (1.0 + theta)).sqrt();
        ConformalMap { rotation, alpha }
    }

    /// Identity normalization (useful in tests and for pre-centered data).
    pub fn identity() -> Self {
        assert_eq!(E, D + 1);
        ConformalMap {
            rotation: Rotation::identity(),
            alpha: 1.0,
        }
    }

    /// The dilation parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Image `w(p) ∈ S^D` of an input point.
    ///
    /// Returns `None` in the measure-zero event that the rotated lift sits
    /// exactly at the projection pole.
    pub fn apply(&self, p: &Point<D>) -> Option<Point<E>> {
        let x: Point<E> = lift(p);
        let y = self.rotation.apply(&x);
        let q: Point<D> = unlift(&y, 1e-300)?;
        Some(lift(&(q * self.alpha)))
    }

    /// Pull the great circle `{x ∈ S^D : g·x = 0}` back to a separator
    /// surface in the input space.
    ///
    /// Derivation: with `y = Q·Π(p)` and `q = α·Π⁻¹(y)`, membership
    /// `g·Π(q) = 0` expands to `g_{E}(|q|²-1) + 2ĝ·q = 0`. On the sphere,
    /// `|q|² = α²(1+y_E)/(1-y_E)`, which turns the condition into the linear
    /// constraint `n·y = b` with `n = (2αĝ, (α²+1)g_E)` and
    /// `b = g_E(1-α²)`. Substituting `y = Qx` gives `m·x = b` with
    /// `m = Qᵀn`, and finally `x = Π(p)` unfolds to
    /// `(m_E - b)|p|² + 2m̂·p - (m_E + b) = 0`:
    /// a sphere when `|m_E - b|` is bounded away from zero, a hyperplane
    /// otherwise.
    ///
    /// Returns `None` only when `g` is numerically degenerate (near-zero) or
    /// the resulting surface is not representable (all coefficients ≈ 0).
    pub fn pull_back_great_circle(&self, g: &Point<E>, tol: f64) -> Option<Separator<D>> {
        assert_eq!(E, D + 1);
        let g = g.normalized(tol)?;
        let a2 = self.alpha * self.alpha;
        // n = (2α·ĝ, (α²+1)·g_E)
        let mut n = Point::<E>::origin();
        for i in 0..D {
            n[i] = 2.0 * self.alpha * g[i];
        }
        n[D] = (a2 + 1.0) * g[D];
        let b = g[D] * (1.0 - a2);
        // m = Qᵀ n  (Householder reflections are involutions).
        let m = self.rotation.apply_inverse(&n);

        let quad = m[D] - b; // coefficient of |p|²
        let mut mhat = Point::<D>::origin();
        for i in 0..D {
            mhat[i] = m[i];
        }
        let lin_norm = mhat.norm();

        if quad.abs() > tol * (1.0 + lin_norm) {
            // Sphere: |p - c|² = |c|² + (m_E + b)/quad, c = -m̂/quad.
            let center = -mhat / quad;
            let r2 = center.norm_sq() + (m[D] + b) / quad;
            if r2 <= 0.0 || !r2.is_finite() {
                return None;
            }
            Some(Separator::Sphere(Sphere::new(center, r2.sqrt())))
        } else {
            // Hyperplane: 2m̂·p = m_E + b.
            let normal = mhat.normalized(tol)?;
            let offset = (m[D] + b) / (2.0 * lin_norm);
            Some(Separator::Halfspace(Hyperplane { normal, offset }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Side;

    fn assert_on_unit_sphere<const E: usize>(x: &Point<E>) {
        assert!(
            (x.norm() - 1.0).abs() < 1e-12,
            "not on unit sphere: |x| = {}",
            x.norm()
        );
    }

    #[test]
    fn lift_lands_on_unit_sphere() {
        for p in [
            Point::<2>::origin(),
            Point::from([1.0, 0.0]),
            Point::from([-3.0, 4.0]),
            Point::from([100.0, -250.0]),
        ] {
            let x: Point<3> = lift(&p);
            assert_on_unit_sphere(&x);
        }
    }

    #[test]
    fn lift_origin_hits_south_pole() {
        let x: Point<3> = lift(&Point::<2>::origin());
        assert_eq!(x.coords(), &[0.0, 0.0, -1.0]);
    }

    #[test]
    fn lift_unlift_roundtrip() {
        for p in [
            Point::<3>::from([0.1, -0.2, 0.3]),
            Point::from([5.0, 5.0, 5.0]),
            Point::from([-0.001, 0.002, 0.0]),
        ] {
            let x: Point<4> = lift(&p);
            let back: Point<3> = unlift(&x, 1e-12).unwrap();
            assert!(back.dist(&p) < 1e-9, "roundtrip drift {}", back.dist(&p));
        }
    }

    #[test]
    fn unlift_rejects_north_pole() {
        let pole = Point::<3>::from([0.0, 0.0, 1.0]);
        assert!(unlift::<2, 3>(&pole, 1e-12).is_none());
    }

    #[test]
    fn conformal_identity_when_centered() {
        let map = ConformalMap::<2, 3>::from_centerpoint(&Point::origin());
        assert!((map.alpha() - 1.0).abs() < 1e-12);
        let p = Point::from([0.7, -0.3]);
        let w = map.apply(&p).unwrap();
        let direct: Point<3> = lift(&p);
        assert!(w.dist(&direct) < 1e-12);
    }

    #[test]
    fn conformal_image_stays_on_sphere() {
        let z = Point::<3>::from([0.2, 0.1, -0.3]);
        let map = ConformalMap::<2, 3>::from_centerpoint(&z);
        for p in [
            Point::from([0.0, 0.0]),
            Point::from([2.0, -1.0]),
            Point::from([-0.5, 0.25]),
        ] {
            let w = map.apply(&p).unwrap();
            assert_on_unit_sphere(&w);
        }
    }

    #[test]
    fn pull_back_agrees_with_forward_classification() {
        // The geometric side of the pulled-back separator must agree with
        // the sign of g·w(p) up to one global flip.
        let z = Point::<3>::from([0.15, -0.25, 0.1]);
        let map = ConformalMap::<2, 3>::from_centerpoint(&z);
        let g = Point::<3>::from([0.3, 0.9, 0.4]).normalized(1e-12).unwrap();
        let sep = map.pull_back_great_circle(&g, 1e-12).unwrap();

        let probes: Vec<Point<2>> = (0..40)
            .map(|i| {
                let t = i as f64 * 0.37;
                Point::from([(t * 1.37).sin() * 2.0, (t * 0.71).cos() * 2.0])
            })
            .collect();

        // Establish the global flip with the first decisive probe.
        let mut flip: Option<bool> = None;
        for p in &probes {
            let w = map.apply(p).unwrap();
            let fwd = g.dot(&w);
            let side = sep.side(p);
            if fwd.abs() < 1e-7 || side == Side::Surface {
                continue;
            }
            let fwd_interior = fwd < 0.0;
            let geo_interior = side == Side::Interior;
            match flip {
                None => flip = Some(fwd_interior != geo_interior),
                Some(f) => assert_eq!(
                    fwd_interior != geo_interior,
                    f,
                    "inconsistent classification at {p:?}"
                ),
            }
        }
        assert!(flip.is_some(), "no decisive probe found");
    }

    #[test]
    fn pull_back_surface_points_have_zero_forward_value() {
        // Points on the separator surface must map onto the great circle.
        let z = Point::<3>::from([0.0, 0.3, 0.2]);
        let map = ConformalMap::<2, 3>::from_centerpoint(&z);
        let g = Point::<3>::from([1.0, -0.5, 0.25])
            .normalized(1e-12)
            .unwrap();
        let sep = map.pull_back_great_circle(&g, 1e-12).unwrap();
        if let Separator::Sphere(s) = sep {
            // Walk the sphere surface and check g·w(p) ≈ 0.
            for i in 0..16 {
                let ang = i as f64 * std::f64::consts::TAU / 16.0;
                let p = s.center + Point::from([ang.cos(), ang.sin()]) * s.radius;
                let w = map.apply(&p).unwrap();
                assert!(
                    g.dot(&w).abs() < 1e-9,
                    "surface point maps off the great circle: {}",
                    g.dot(&w)
                );
            }
        } else {
            panic!("expected a spherical separator for this configuration");
        }
    }

    #[test]
    fn pull_back_vertical_circle_gives_hyperplane_without_dilation() {
        // With the identity map, a great circle through both poles
        // (g_E = 0) pulls back to a hyperplane through the origin.
        let map = ConformalMap::<2, 3>::identity();
        let g = Point::<3>::from([1.0, 0.0, 0.0]);
        let sep = map.pull_back_great_circle(&g, 1e-12).unwrap();
        match sep {
            Separator::Halfspace(h) => {
                assert!(h.offset.abs() < 1e-12);
                assert!((h.normal[0].abs() - 1.0).abs() < 1e-12);
            }
            Separator::Sphere(_) => panic!("expected hyperplane"),
        }
    }

    #[test]
    fn pull_back_equator_gives_unit_sphere_without_dilation() {
        // The equator {x_E = 0} is exactly the image of the unit sphere.
        let map = ConformalMap::<2, 3>::identity();
        let g = Point::<3>::from([0.0, 0.0, 1.0]);
        let sep = map.pull_back_great_circle(&g, 1e-12).unwrap();
        match sep {
            Separator::Sphere(s) => {
                assert!(s.center.norm() < 1e-12);
                assert!((s.radius - 1.0).abs() < 1e-12);
            }
            Separator::Halfspace(_) => panic!("expected sphere"),
        }
    }

    #[test]
    fn conformal_map_dilation_algebra() {
        // Two defining properties of the MTTV normalization built from a
        // centerpoint z: (1) the dilation parameter satisfies
        // α² = (1-θ)/(1+θ) with θ = |z|; (2) a sphere point that the
        // rotation takes to the "equator" relative to z's axis is pushed
        // to height (α²-1)/(α²+1) by the dilation — i.e. mass is pushed
        // away from the pole exactly as the α-formula prescribes.
        let z = Point::<3>::from([0.3, -0.2, 0.25]);
        let map = ConformalMap::<2, 3>::from_centerpoint(&z);
        let theta = z.norm();
        let a2 = map.alpha() * map.alpha();
        assert!((a2 - (1.0 - theta) / (1.0 + theta)).abs() < 1e-12);

        // Build the pre-image of the equator point e_0: x = Q⁻¹(e_0),
        // p = Π⁻¹(x). Then w(p) = D_α(e_0) must have last coordinate
        // (α² - 1)/(α² + 1).
        let dir = z.normalized(1e-12).unwrap();
        let rot = crate::matrix::Rotation::to_last_axis(&dir);
        let e0 = Point::<3>::basis(0);
        let x = rot.apply_inverse(&e0);
        let p: Point<2> = unlift(&x, 1e-12).unwrap();
        let w = map.apply(&p).unwrap();
        let expected = (a2 - 1.0) / (a2 + 1.0);
        assert!(
            (w.last() - expected).abs() < 1e-9,
            "equator image height {} vs expected {expected}",
            w.last()
        );
        assert!(expected < 0.0, "dilation pushes mass off the pole");
    }

    #[test]
    fn pull_back_rejects_zero_normal() {
        let map = ConformalMap::<2, 3>::identity();
        assert!(map
            .pull_back_great_circle(&Point::origin(), 1e-12)
            .is_none());
    }

    #[test]
    fn works_in_higher_dimensions() {
        let z = Point::<5>::from([0.1, 0.0, -0.1, 0.05, 0.2]);
        let map = ConformalMap::<4, 5>::from_centerpoint(&z);
        let g = Point::<5>::from([0.2, -0.4, 0.6, 0.3, 0.55])
            .normalized(1e-12)
            .unwrap();
        let sep = map.pull_back_great_circle(&g, 1e-12).unwrap();
        // Consistency on a probe point.
        let p = Point::<4>::from([0.3, 0.3, -0.2, 0.1]);
        let w = map.apply(&p).unwrap();
        // side and forward sign must be deterministic (smoke check).
        let _ = (sep.side(&p), g.dot(&w));
    }
}
