//! Microbench for the SoA blocked distance kernels (DESIGN.md §12):
//! one query against `n` candidates, scalar AoS loop vs `dist_sq_range`
//! (contiguous) vs `dist_sq_gather` (shuffled ids), per dimension.
//!
//! ```sh
//! cargo run --release -p sepdc-bench --bin bench_kernels            # full
//! cargo run --release -p sepdc-bench --bin bench_kernels -- --smoke
//! ```
//!
//! Every variant's distance sums are compared bitwise before a rate is
//! reported — a kernel that drifted from the scalar reference aborts the
//! bench rather than printing a wrong-but-fast number.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sepdc_bench::harness::{host_info, timed, Table};
use sepdc_geom::soa::SoaPoints;
use sepdc_workloads::Workload;

/// Median of `reps` timings of `f`. Each variant fills a caller-observed
/// distance buffer, so the work cannot be discarded; the reduction and the
/// parity check happen *outside* the timed region for every variant alike.
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut secs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let ((), dt) = timed(&mut f);
        secs.push(dt);
    }
    secs.sort_by(f64::total_cmp);
    secs[secs.len() / 2]
}

fn run_dim<const D: usize>(table: &mut Table, n: usize, reps: usize) {
    let pts = Workload::UniformCube.generate::<D>(n, 11);
    let soa = SoaPoints::from_points(&pts);
    let q = pts[n / 2];
    let mut ids: Vec<u32> = (0..n as u32).collect();
    ids.shuffle(&mut ChaCha8Rng::seed_from_u64(42));
    let mut buf = vec![0.0f64; n];
    let mut want = vec![0.0f64; n];

    // Scalar AoS reference: one strided dist_sq per candidate, written to
    // the same kind of output buffer the kernels fill.
    let t_scalar = median_secs(reps, || {
        for (j, p) in pts.iter().enumerate() {
            buf[j] = q.dist_sq(p);
        }
    });
    want.copy_from_slice(&buf);
    // Blocked contiguous kernel.
    let t_range = median_secs(reps, || soa.dist_sq_range(&q, 0, &mut buf));
    for j in 0..n {
        assert_eq!(
            buf[j].to_bits(),
            want[j].to_bits(),
            "range kernel diverged from scalar reference at {j}"
        );
    }
    // Scalar gather reference: same shuffled id walk, AoS loads.
    let t_sgather = median_secs(reps, || {
        for (j, &i) in ids.iter().enumerate() {
            buf[j] = q.dist_sq(&pts[i as usize]);
        }
    });
    want.copy_from_slice(&buf);
    // Blocked gather kernel over the shuffled id permutation.
    let t_gather = median_secs(reps, || soa.dist_sq_gather(&q, &ids, &mut buf));
    for j in 0..n {
        assert_eq!(
            buf[j].to_bits(),
            want[j].to_bits(),
            "gather kernel diverged from scalar reference at {j}"
        );
    }

    let rate = |t: f64| format!("{:.1}", n as f64 / t / 1e6);
    table.row(
        format!("uniform-cube {D}d n={n}"),
        vec![
            rate(t_scalar),
            rate(t_range),
            rate(t_sgather),
            rate(t_gather),
            format!("{:.2}", t_scalar / t_range),
            format!("{:.2}", t_sgather / t_gather),
        ],
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n, reps) = if smoke { (40_000, 3) } else { (1_000_000, 9) };

    let mut table = Table::new(
        "BENCH SoA distance kernels (one query vs n candidates)",
        &[
            "case",
            "scalar Md/s",
            "range Md/s",
            "scalar-gather Md/s",
            "gather Md/s",
            "range x",
            "gather x",
        ],
    );
    run_dim::<2>(&mut table, n, reps);
    run_dim::<3>(&mut table, n, reps);
    run_dim::<8>(&mut table, n, reps);
    table.note(format!(
        "reps={reps}, median; Md/s = million squared distances per second; \
         range x = range kernel vs contiguous scalar loop, gather x = gather \
         kernel vs scalar loop over the same shuffled ids"
    ));
    table.note(
        "all variants are bitwise-parity-gated against Point::dist_sq before \
         a rate is printed"
            .to_string(),
    );
    if smoke {
        table.note("--smoke run: n scaled down 25x (CI sanity only)".to_string());
    }
    let host = host_info();
    host.warn_if_single_core();
    table.note(host.describe());
    table.print();
}
