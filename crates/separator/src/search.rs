//! The retry loop around the unit-time candidate generator.
//!
//! Section 3.3 of the paper: *"Iteratively apply Unit Time Sphere Separator
//! Algorithm until finding a good sphere separator S."* Each candidate
//! succeeds with probability bounded below by a constant (≥ 1/2 in the
//! paper's accounting), so the number of rounds is geometric; Theorem 3.1
//! turns this into the `O(log n)` high-probability bound via a Bernoulli
//! ("heads/tails") argument.
//!
//! Practical completeness: after `max_attempts` failed candidates the
//! search falls back to a deterministic median hyperplane cut, which
//! `δ`-splits every point multiset that is splittable at all. This keeps
//! the implementation total without changing the probabilistic analysis
//! (the fallback fires with probability `2^-max_attempts`).

use crate::config::SeparatorConfig;
use crate::hyperplane_cut::median_cut_widest;
use crate::mttv::unit_time_candidate;
use crate::quality::{is_good_point_split, split_counts, SplitCounts};
use rand::Rng;
use sepdc_geom::point::Point;
use sepdc_geom::shape::Separator;

/// How the good separator was obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchOutcome {
    /// A unit-time random candidate was accepted.
    Random,
    /// The deterministic median-cut fallback was used.
    Fallback,
}

/// A good separator together with the search statistics the complexity
/// analysis cares about.
#[derive(Clone, Debug)]
pub struct FoundSeparator<const D: usize> {
    /// The accepted separator.
    pub separator: Separator<D>,
    /// How the split partitions the input points.
    pub counts: SplitCounts,
    /// Number of unit-time candidates drawn (the 'coin flips' of
    /// Theorem 3.1), including the accepted one.
    pub attempts: usize,
    /// Random acceptance or deterministic fallback.
    pub outcome: SearchOutcome,
}

/// Find a separator that `δ`-splits `points`, retrying unit-time candidates
/// and falling back to a median cut.
///
/// Returns `None` only when the point set cannot be split at all (fewer
/// than two points, or every point identical).
///
/// ```
/// use rand::SeedableRng;
/// use sepdc_separator::{find_good_separator, SeparatorConfig};
/// use sepdc_geom::Point;
///
/// let points: Vec<Point<2>> = (0..100)
///     .map(|i| Point::from([(i % 10) as f64, (i / 10) as f64]))
///     .collect();
/// let cfg = SeparatorConfig::default();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let found = find_good_separator::<2, 3, _>(&points, &cfg, &mut rng).unwrap();
/// assert!(found.counts.ratio() <= cfg.delta(2));
/// ```
pub fn find_good_separator<const D: usize, const E: usize, R: Rng>(
    points: &[Point<D>],
    cfg: &SeparatorConfig,
    rng: &mut R,
) -> Option<FoundSeparator<D>> {
    if points.len() < 2 {
        return None;
    }
    let delta = cfg.delta(D);
    for attempt in 1..=cfg.max_attempts {
        let Some(sep) = unit_time_candidate::<D, E, R>(points, cfg, rng) else {
            continue;
        };
        let counts = split_counts(points, &sep, cfg.tol);
        if is_good_point_split(&counts, delta) {
            return Some(FoundSeparator {
                separator: sep,
                counts,
                attempts: attempt,
                outcome: SearchOutcome::Random,
            });
        }
    }
    // Deterministic fallback.
    let sep = median_cut_widest(points)?;
    let counts = split_counts(points, &sep, cfg.tol);
    if counts.left() == 0 || counts.right() == 0 {
        return None;
    }
    Some(FoundSeparator {
        separator: sep,
        counts,
        attempts: cfg.max_attempts,
        outcome: SearchOutcome::Fallback,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn uniform_square(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::from([rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]))
            .collect()
    }

    #[test]
    fn finds_good_separator_quickly_on_uniform() {
        let pts = uniform_square(5000, 1);
        let cfg = SeparatorConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let found = find_good_separator::<2, 3, _>(&pts, &cfg, &mut rng).unwrap();
        assert_eq!(found.outcome, SearchOutcome::Random);
        assert!(found.attempts <= 10, "needed {} attempts", found.attempts);
        assert!(found.counts.ratio() <= cfg.delta(2));
    }

    #[test]
    fn attempt_distribution_is_geometric_ish() {
        // Mean attempts should be small; this is the empirical face of the
        // Bernoulli argument in Theorem 3.1.
        let pts = uniform_square(2000, 3);
        let cfg = SeparatorConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut total_attempts = 0;
        let runs = 30;
        for _ in 0..runs {
            let f = find_good_separator::<2, 3, _>(&pts, &cfg, &mut rng).unwrap();
            total_attempts += f.attempts;
        }
        let mean = total_attempts as f64 / runs as f64;
        assert!(mean < 4.0, "mean attempts {mean} too high");
    }

    #[test]
    fn two_points_are_split() {
        let pts = vec![Point::<2>::from([0.0, 0.0]), Point::from([1.0, 0.0])];
        let cfg = SeparatorConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let found = find_good_separator::<2, 3, _>(&pts, &cfg, &mut rng).unwrap();
        assert_eq!(found.counts.left(), 1);
        assert_eq!(found.counts.right(), 1);
    }

    #[test]
    fn identical_points_return_none() {
        let pts = vec![Point::<2>::splat(1.0); 100];
        let cfg = SeparatorConfig {
            max_attempts: 4, // keep the test fast; fallback also fails
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        assert!(find_good_separator::<2, 3, _>(&pts, &cfg, &mut rng).is_none());
    }

    #[test]
    fn single_point_returns_none() {
        let pts = vec![Point::<2>::origin()];
        let cfg = SeparatorConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        assert!(find_good_separator::<2, 3, _>(&pts, &cfg, &mut rng).is_none());
    }

    #[test]
    fn fallback_fires_when_candidates_disabled() {
        // Zero attempts forces the median-cut fallback path.
        let pts = uniform_square(500, 8);
        let cfg = SeparatorConfig {
            max_attempts: 0,
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let found = find_good_separator::<2, 3, _>(&pts, &cfg, &mut rng).unwrap();
        assert_eq!(found.outcome, SearchOutcome::Fallback);
        assert!(found.counts.left() > 0 && found.counts.right() > 0);
    }

    #[test]
    fn works_in_3d() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let pts: Vec<Point<3>> = (0..2000)
            .map(|_| {
                Point::from([
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                ])
            })
            .collect();
        let cfg = SeparatorConfig::default();
        let found = find_good_separator::<3, 4, _>(&pts, &cfg, &mut rng).unwrap();
        assert!(found.counts.ratio() <= cfg.delta(3) + 1e-12);
    }
}
