//! k-d tree — the sequential `O(n log n)`-class baseline (stand-in for
//! Vaidya's algorithm in the work comparison) and the verification range
//! searcher.

use crate::config::Precision;
use crate::error::{validate_k, validate_points, SepdcError};
use crate::knn::{KnnResult, Neighbor};
use rayon::prelude::*;
use sepdc_geom::point::Point;
use sepdc_geom::soa::{F32Bound, FilterStats, SoaPoints};

const LEAF_SIZE: usize = 16;

enum Node {
    Internal {
        axis: u8,
        value: f64,
        left: u32,
        right: u32,
    },
    /// Range into the permuted `ids` array.
    Leaf { start: u32, end: u32 },
}

/// Median-split k-d tree over a borrowed point slice.
pub struct KdTree<'a, const D: usize> {
    points: &'a [Point<D>],
    ids: Vec<u32>,
    /// Coordinates in `ids` (permuted) order, so every leaf is a
    /// contiguous column range and scans run through the blocked SoA
    /// kernel without gather indirection.
    soa: SoaPoints<D>,
    nodes: Vec<Node>,
    root: u32,
}

impl<'a, const D: usize> KdTree<'a, D> {
    /// Build over all points.
    pub fn build(points: &'a [Point<D>]) -> Self {
        let ids: Vec<u32> = (0..points.len() as u32).collect();
        Self::build_subset(points, ids)
    }

    /// Build over a subset given by `ids` (indices into `points`).
    pub fn build_subset(points: &'a [Point<D>], mut ids: Vec<u32>) -> Self {
        let mut tree = KdTree {
            points,
            ids: Vec::new(),
            soa: SoaPoints::from_points(&[]),
            nodes: Vec::new(),
            root: 0,
        };
        if ids.is_empty() {
            tree.nodes.push(Node::Leaf { start: 0, end: 0 });
            return tree;
        }
        let n = ids.len();
        let root = tree.build_rec(&mut ids, 0, 0, n, 0);
        let permuted: Vec<Point<D>> = ids.iter().map(|&i| points[i as usize]).collect();
        tree.soa = SoaPoints::from_points(&permuted);
        tree.ids = ids;
        tree.root = root;
        tree
    }

    /// Recursively arrange `ids[start..end]` and emit nodes. `depth` picks
    /// the cycling split axis, switching to the widest axis when the
    /// cycling axis is degenerate.
    fn build_rec(
        &mut self,
        ids: &mut [u32],
        offset: usize,
        start: usize,
        end: usize,
        depth: usize,
    ) -> u32 {
        let len = end - start;
        if len <= LEAF_SIZE {
            self.nodes.push(Node::Leaf {
                start: (offset + start) as u32,
                end: (offset + end) as u32,
            });
            return (self.nodes.len() - 1) as u32;
        }
        // Pick an axis with spread, starting from the cycling choice.
        let slice = &mut ids[start..end];
        let mut axis = depth % D;
        let mut found = false;
        for off in 0..D {
            let a = (depth + off) % D;
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &i in slice.iter() {
                let v = self.points[i as usize][a];
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi > lo {
                axis = a;
                found = true;
                break;
            }
        }
        if !found {
            // All points in this range identical: leaf regardless of size.
            self.nodes.push(Node::Leaf {
                start: (offset + start) as u32,
                end: (offset + end) as u32,
            });
            return (self.nodes.len() - 1) as u32;
        }
        let mid = len / 2;
        // total_cmp keeps the selection total even on NaN coordinates:
        // KdTree::build is public and performs no input validation (only
        // try_kdtree_all_knn does), so a partial_cmp().expect() here was a
        // reachable panic. NaNs order after +inf under total_cmp, so they
        // collect at the high end of the split instead of aborting.
        slice.select_nth_unstable_by(mid, |&a, &b| {
            self.points[a as usize][axis].total_cmp(&self.points[b as usize][axis])
        });
        let value = self.points[slice[mid] as usize][axis];
        let left = self.build_rec(ids, offset, start, start + mid, depth + 1);
        let right = self.build_rec(ids, offset, start + mid, end, depth + 1);
        self.nodes.push(Node::Internal {
            axis: axis as u8,
            value,
            left,
            right,
        });
        (self.nodes.len() - 1) as u32
    }

    /// The `k` nearest points to `query`, excluding index `exclude`
    /// (pass `u32::MAX` to exclude nothing). Ascending distance, ties by
    /// index. Runs the default (mixed) precision tier — byte-identical to
    /// the exact tier by the DESIGN.md §17 safe-reject contract.
    pub fn knn(&self, query: &Point<D>, k: usize, exclude: u32) -> Vec<Neighbor> {
        self.knn_with(
            query,
            k,
            exclude,
            Precision::default(),
            &mut FilterStats::default(),
        )
    }

    /// [`Self::knn`] with an explicit precision tier and a filter-counter
    /// sink. In the mixed tier, leaf tiles are scanned in f32 first and a
    /// candidate is skipped only when its certified lower bound strictly
    /// exceeds the current k-th distance — ties break by index, so a tie
    /// must always confirm in f64. Both tiers return identical bytes.
    pub fn knn_with(
        &self,
        query: &Point<D>,
        k: usize,
        exclude: u32,
        precision: Precision,
        stats: &mut FilterStats,
    ) -> Vec<Neighbor> {
        let mut best: Vec<Neighbor> = Vec::with_capacity(k + 1);
        if !self.ids.is_empty() {
            // One certified bound per query: the arena magnitude is cached,
            // only the query magnitudes vary.
            let bound = precision.is_mixed().then(|| self.soa.f32_bound(query));
            self.knn_rec(self.root, query, k, exclude, bound, &mut best, stats);
        }
        best
    }

    #[allow(clippy::too_many_arguments)]
    fn knn_rec(
        &self,
        node: u32,
        query: &Point<D>,
        k: usize,
        exclude: u32,
        bound: Option<F32Bound>,
        best: &mut Vec<Neighbor>,
        stats: &mut FilterStats,
    ) {
        match &self.nodes[node as usize] {
            Node::Leaf { start, end } => {
                let (s, e) = (*start as usize, *end as usize);
                match bound {
                    None => self.scan_leaf_exact(s, e, query, k, exclude, best),
                    Some(b) => self.scan_leaf_mixed(s, e, query, k, exclude, b, best, stats),
                }
            }
            Node::Internal {
                axis,
                value,
                left,
                right,
            } => {
                let diff = query[*axis as usize] - value;
                let (near, far) = if diff < 0.0 {
                    (*left, *right)
                } else {
                    (*right, *left)
                };
                self.knn_rec(near, query, k, exclude, bound, best, stats);
                // Visit the far side only if it can still contain a winner.
                let worst = if best.len() == k {
                    best[k - 1].dist_sq
                } else {
                    f64::INFINITY
                };
                if diff * diff <= worst {
                    self.knn_rec(far, query, k, exclude, bound, best, stats);
                }
            }
        }
    }

    /// Exact leaf scan: distances for the whole leaf through the blocked
    /// SoA kernel (leaves are contiguous in permuted order), then a scalar
    /// insertion pass. Oversized all-identical leaves are walked in
    /// LEAF_SIZE tiles so the buffer stays on the stack.
    fn scan_leaf_exact(
        &self,
        s: usize,
        e: usize,
        query: &Point<D>,
        k: usize,
        exclude: u32,
        best: &mut Vec<Neighbor>,
    ) {
        let mut buf = [0.0f64; LEAF_SIZE];
        let mut pos = s;
        while pos < e {
            let m = (e - pos).min(LEAF_SIZE);
            let dists = &mut buf[..m];
            self.soa.dist_sq_range(query, pos, dists);
            for (off, &d) in dists.iter().enumerate() {
                let i = self.ids[pos + off];
                if i == exclude {
                    continue;
                }
                Self::insert_neighbor(best, k, i, d);
            }
            pos += m;
        }
    }

    /// Mixed-tier leaf scan: the tile runs through the f32 kernel and a
    /// candidate is dropped when `lb(d32) > tail.dist_sq` — strictly
    /// greater, because a candidate tying the k-th distance can still win
    /// on index and must confirm in f64. Survivors recompute the exact
    /// distance through the scalar kernel (bit-identical to the blocked
    /// f64 tile by the parity contract), so the result bytes match
    /// [`Self::scan_leaf_exact`].
    #[allow(clippy::too_many_arguments)]
    fn scan_leaf_mixed(
        &self,
        s: usize,
        e: usize,
        query: &Point<D>,
        k: usize,
        exclude: u32,
        bound: F32Bound,
        best: &mut Vec<Neighbor>,
        stats: &mut FilterStats,
    ) {
        let mut buf32 = [0.0f32; LEAF_SIZE];
        let mut pos = s;
        while pos < e {
            let m = (e - pos).min(LEAF_SIZE);
            let d32s = &mut buf32[..m];
            self.soa.dist_sq_f32_range(query, pos, d32s);
            for (off, &d32) in d32s.iter().enumerate() {
                let i = self.ids[pos + off];
                if i == exclude {
                    continue;
                }
                if best.len() == k {
                    let tail = best[k - 1].dist_sq;
                    let lb = bound.lower_bound(d32);
                    if lb > tail {
                        stats.f32_rejects += 1;
                        continue;
                    }
                    let d = self.soa.dist_sq_to(query, pos + off);
                    stats.f64_confirms += 1;
                    if lb > d {
                        // Exact distance below the certified lower bound:
                        // the DESIGN.md §17 analysis is violated and the
                        // reject above would have been unsound. CI gates
                        // this at zero.
                        stats.unsafe_margin_hits += 1;
                    }
                    Self::insert_neighbor(best, k, i, d);
                } else {
                    // List not full yet: every candidate is a confirm;
                    // still validate the certified bound against it.
                    let d = self.soa.dist_sq_to(query, pos + off);
                    stats.f64_confirms += 1;
                    if bound.lower_bound(d32) > d {
                        stats.unsafe_margin_hits += 1;
                    }
                    Self::insert_neighbor(best, k, i, d);
                }
            }
            pos += m;
        }
    }

    /// Insert `(i, d)` into the ascending-(distance, index) top-`k` list.
    fn insert_neighbor(best: &mut Vec<Neighbor>, k: usize, i: u32, d: f64) {
        if best.len() == k {
            let tail = best[k - 1];
            if d > tail.dist_sq || (d == tail.dist_sq && i >= tail.idx) {
                return;
            }
        }
        let ins = best
            .iter()
            .position(|n| d < n.dist_sq || (d == n.dist_sq && i < n.idx))
            .unwrap_or(best.len());
        best.insert(ins, Neighbor { idx: i, dist_sq: d });
        best.truncate(k);
    }

    /// All point indices strictly within distance `radius` of `center`
    /// (open ball), excluding `exclude`.
    pub fn within_radius(&self, center: &Point<D>, radius: f64, exclude: u32) -> Vec<u32> {
        let mut out = Vec::new();
        if !self.ids.is_empty() && radius > 0.0 {
            self.range_rec(
                self.root,
                center,
                radius * radius,
                radius,
                exclude,
                &mut out,
            );
        }
        out
    }

    fn range_rec(
        &self,
        node: u32,
        center: &Point<D>,
        radius_sq: f64,
        radius: f64,
        exclude: u32,
        out: &mut Vec<u32>,
    ) {
        match &self.nodes[node as usize] {
            Node::Leaf { start, end } => {
                let (s, e) = (*start as usize, *end as usize);
                let mut buf = [0.0f64; LEAF_SIZE];
                let mut pos = s;
                while pos < e {
                    let m = (e - pos).min(LEAF_SIZE);
                    let dists = &mut buf[..m];
                    self.soa.dist_sq_range(center, pos, dists);
                    for (off, &d) in dists.iter().enumerate() {
                        let i = self.ids[pos + off];
                        if i != exclude && d < radius_sq {
                            out.push(i);
                        }
                    }
                    pos += m;
                }
            }
            Node::Internal {
                axis,
                value,
                left,
                right,
            } => {
                let diff = center[*axis as usize] - value;
                if diff < radius {
                    self.range_rec(*left, center, radius_sq, radius, exclude, out);
                }
                if -diff < radius {
                    self.range_rec(*right, center, radius_sq, radius, exclude, out);
                }
            }
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// All-k-NN via one k-d tree and a parallel query sweep — the sequential-
/// work baseline of EXP-4.
///
/// # Panics
/// Panics on `k = 0` or non-finite coordinates; use
/// [`try_kdtree_all_knn`] to handle those as typed errors instead.
pub fn kdtree_all_knn<const D: usize>(points: &[Point<D>], k: usize) -> KnnResult {
    try_kdtree_all_knn(points, k).unwrap_or_else(|e| panic!("kdtree_all_knn: {e}"))
}

/// Total variant of [`kdtree_all_knn`]: rejects `k = 0` and non-finite
/// coordinates with a typed [`SepdcError`] instead of panicking. Runs the
/// default (mixed) precision tier.
pub fn try_kdtree_all_knn<const D: usize>(
    points: &[Point<D>],
    k: usize,
) -> Result<KnnResult, SepdcError> {
    try_kdtree_all_knn_with(points, k, Precision::default()).map(|(r, _)| r)
}

/// [`try_kdtree_all_knn`] with an explicit precision tier, returning the
/// accumulated filter counters alongside the (tier-independent) result.
pub fn try_kdtree_all_knn_with<const D: usize>(
    points: &[Point<D>],
    k: usize,
    precision: Precision,
) -> Result<(KnnResult, FilterStats), SepdcError> {
    validate_k(k)?;
    validate_points(points)?;
    let tree = KdTree::build(points);
    let lists: Vec<(Vec<Neighbor>, FilterStats)> = points
        .par_iter()
        .enumerate()
        .map(|(i, p)| {
            let mut stats = FilterStats::default();
            let l = tree.knn_with(p, k, i as u32, precision, &mut stats);
            (l, stats)
        })
        .collect();
    let mut result = KnnResult::new(points.len(), k);
    let mut stats = FilterStats::default();
    for (i, (l, s)) in lists.iter().enumerate() {
        result.set_list(i, l);
        stats.merge(s);
    }
    Ok((result, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_knn;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_points<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut c = [0.0; D];
                for v in &mut c {
                    *v = rng.gen_range(0.0..1.0);
                }
                Point(c)
            })
            .collect()
    }

    #[test]
    fn matches_brute_force_2d() {
        let pts = random_points::<2>(500, 1);
        for k in [1, 3, 7] {
            let kd = kdtree_all_knn(&pts, k);
            let bf = brute_force_knn(&pts, k);
            kd.same_distances(&bf, 1e-12).unwrap();
            kd.check_invariants().unwrap();
        }
    }

    #[test]
    fn matches_brute_force_3d_and_4d() {
        let pts3 = random_points::<3>(300, 2);
        kdtree_all_knn(&pts3, 4)
            .same_distances(&brute_force_knn(&pts3, 4), 1e-12)
            .unwrap();
        let pts4 = random_points::<4>(200, 3);
        kdtree_all_knn(&pts4, 2)
            .same_distances(&brute_force_knn(&pts4, 2), 1e-12)
            .unwrap();
    }

    #[test]
    fn handles_duplicates_and_grids() {
        let mut pts = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                pts.push(Point::<2>::from([i as f64, j as f64]));
            }
        }
        pts.extend_from_slice(&[Point::from([5.0, 5.0]); 5]); // duplicates
        let kd = kdtree_all_knn(&pts, 3);
        let bf = brute_force_knn(&pts, 3);
        kd.same_distances(&bf, 1e-12).unwrap();
    }

    #[test]
    fn all_identical_points() {
        let pts = vec![Point::<2>::splat(1.0); 40];
        let kd = kdtree_all_knn(&pts, 2);
        for i in 0..40 {
            assert_eq!(kd.neighbors(i).len(), 2);
            assert_eq!(kd.radius_sq(i), 0.0);
        }
    }

    #[test]
    fn subset_tree_only_sees_subset() {
        let pts: Vec<Point<1>> = (0..10).map(|i| Point::from([i as f64])).collect();
        let tree = KdTree::build_subset(&pts, vec![0, 9]);
        let nn = tree.knn(&Point::from([1.0]), 1, u32::MAX);
        assert_eq!(nn[0].idx, 0);
        assert_eq!(tree.len(), 2);
    }

    #[test]
    fn within_radius_is_open_ball() {
        let pts: Vec<Point<1>> = (0..5).map(|i| Point::from([i as f64])).collect();
        let tree = KdTree::build(&pts);
        let mut hits = tree.within_radius(&Point::from([2.0]), 1.0, u32::MAX);
        hits.sort_unstable();
        // Strictly within distance 1 of x=2: only the point at 2 itself.
        assert_eq!(hits, vec![2]);
        let mut wider = tree.within_radius(&Point::from([2.0]), 1.5, u32::MAX);
        wider.sort_unstable();
        assert_eq!(wider, vec![1, 2, 3]);
    }

    #[test]
    fn within_radius_matches_linear_scan() {
        let pts = random_points::<3>(400, 4);
        let tree = KdTree::build(&pts);
        let center = Point::from([0.5, 0.5, 0.5]);
        for r in [0.1, 0.3, 0.7] {
            let mut fast = tree.within_radius(&center, r, u32::MAX);
            fast.sort_unstable();
            let mut slow: Vec<u32> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| center.dist_sq(p) < r * r)
                .map(|(i, _)| i as u32)
                .collect();
            slow.sort_unstable();
            assert_eq!(fast, slow, "radius {r}");
        }
    }

    #[test]
    fn empty_tree_queries() {
        let pts: Vec<Point<2>> = Vec::new();
        let tree = KdTree::build(&pts);
        assert!(tree.knn(&Point::origin(), 3, u32::MAX).is_empty());
        assert!(tree
            .within_radius(&Point::origin(), 1.0, u32::MAX)
            .is_empty());
        assert!(tree.is_empty());
    }

    #[test]
    fn nan_coordinates_build_without_panicking() {
        // Regression: the selection comparator used
        // partial_cmp().expect("non-finite coordinate"), so the public,
        // unvalidated KdTree::build panicked on NaN input. total_cmp keeps
        // the build total; NaN points just land somewhere in the tree.
        let mut pts = random_points::<2>(200, 5);
        pts[17].0[0] = f64::NAN;
        pts[101].0[1] = f64::NAN;
        let tree = KdTree::build(&pts);
        assert_eq!(tree.len(), 200);
        // Queries over the finite points still work.
        let nn = tree.knn(&pts[0], 1, 0);
        assert_eq!(nn.len(), 1);
        assert!(nn[0].dist_sq.is_finite());
        // Infinities are handled the same way.
        let mut pts_inf = random_points::<3>(100, 6);
        pts_inf[3].0[2] = f64::INFINITY;
        let _ = KdTree::build(&pts_inf);
    }

    #[test]
    fn nan_coordinates_yield_typed_error_not_panic() {
        // The validated entry point reports the offender's index.
        let mut pts = random_points::<2>(50, 7);
        pts[23].0[1] = f64::NAN;
        assert_eq!(
            try_kdtree_all_knn(&pts, 2).err(),
            Some(SepdcError::NonFinitePoint { idx: 23 })
        );
    }

    #[test]
    #[should_panic(expected = "kdtree_all_knn: point 23 has a non-finite")]
    fn infallible_wrapper_panics_with_typed_message() {
        let mut pts = random_points::<2>(50, 7);
        pts[23].0[1] = f64::NAN;
        let _ = kdtree_all_knn(&pts, 2);
    }

    #[test]
    fn precision_tiers_are_byte_identical() {
        let pts = random_points::<3>(600, 9);
        for k in [1, 4, 9] {
            let (exact, es) = try_kdtree_all_knn_with(&pts, k, Precision::Exact).unwrap();
            let (mixed, ms) = try_kdtree_all_knn_with(&pts, k, Precision::Mixed).unwrap();
            for i in 0..pts.len() {
                assert_eq!(exact.neighbors(i), mixed.neighbors(i), "point {i} k {k}");
            }
            assert_eq!(es, FilterStats::default(), "exact tier touched counters");
            assert!(ms.f32_rejects > 0, "mixed tier never certified a reject");
            assert!(ms.f64_confirms > 0);
            assert_eq!(ms.unsafe_margin_hits, 0, "certified bound violated");
            assert_eq!(ms.eps_skips, 0, "kd scan has no ε relaxation");
        }
    }

    #[test]
    fn mixed_tier_ties_confirm_in_f64() {
        // A grid with massive duplicate distances: every candidate ties,
        // so the strict `lb > tail` reject must never fire on a tie and
        // the index tiebreak must survive the mixed tier bit-for-bit.
        let mut pts = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                pts.push(Point::<2>::from([i as f64, j as f64]));
            }
        }
        pts.extend_from_slice(&[Point::from([6.0, 6.0]); 4]);
        let (exact, _) = try_kdtree_all_knn_with(&pts, 5, Precision::Exact).unwrap();
        let (mixed, ms) = try_kdtree_all_knn_with(&pts, 5, Precision::Mixed).unwrap();
        for i in 0..pts.len() {
            assert_eq!(exact.neighbors(i), mixed.neighbors(i), "point {i}");
        }
        assert_eq!(ms.unsafe_margin_hits, 0);
    }

    #[test]
    fn exclude_is_respected() {
        let pts: Vec<Point<1>> = (0..5).map(|i| Point::from([i as f64])).collect();
        let tree = KdTree::build(&pts);
        let nn = tree.knn(&pts[2], 1, 2);
        assert_ne!(nn[0].idx, 2);
        assert_eq!(nn[0].dist_sq, 1.0);
    }
}
