//! The correction step of the divide-and-conquer recursions.
//!
//! After solving the two sides of a separator recursively, only the points
//! whose subset k-neighborhood ball crosses the separator can have wrong
//! lists (Lemma 6.1). Two correction strategies exist:
//!
//! * **query-structure correction** (`correct_via_query`) — the paper's
//!   Section 5 combine step and the Section 6 *punt* path: build the
//!   Section 3 search structure over the crossing balls and let every point
//!   of the subset query it;
//! * **fast correction** (in [`crate::parallel`]) — march crossing balls
//!   down the opposite partition subtree (Section 6.2) in `O(1)` rounds.
//!
//! Both funnel candidate `(owner, point)` pairs into
//! `SharedLists::merge_candidate`, which is order-independent, so the
//! parallel corrections are deterministic.

use crate::query::{QueryTree, QueryTreeConfig};
use crate::shared::SharedLists;
use rayon::prelude::*;
use sepdc_geom::ball::Ball;
use sepdc_geom::point::Point;
use sepdc_geom::shape::Separator;
use sepdc_geom::soa::{FilterStats, SoaPoints};
use sepdc_scan::CostProfile;

/// A crossing ball together with its owning point id.
pub(crate) struct CrossingBall<const D: usize> {
    pub owner: u32,
    pub ball: Ball<D>,
}

/// Sides smaller than this are scanned sequentially — parallel dispatch
/// overhead dwarfs the per-id work below it.
const PAR_SCAN_CUTOFF: usize = 2048;

/// Collect the crossing balls of one side. Owners with unbounded subset
/// balls (side smaller than `k+1`, possible only after degenerate fallback
/// cuts) are returned separately for exhaustive correction.
///
/// `eps_scale` is the ε-mode radius shrink [`crate::config::eps_radius_scale`]
/// (`1.0` = exact). When `< 1.0` each subset ball is tested with radius
/// `r · eps_scale`: balls that cross only at full radius are dropped, which
/// is exactly what bounds the reported k-th distance by `(1+ε)` times the
/// exact one (DESIGN.md §17). The third return value counts those drops so
/// the relaxation stays observable; it is always `0` at `eps_scale = 1.0`,
/// where the constructed balls are bit-identical to the unscaled ones
/// (IEEE: `x * 1.0 == x`).
///
/// Large sides are scanned as parallel chunks with per-chunk buffers; the
/// chunk results are concatenated in chunk order, so the output is
/// identical to the sequential scan regardless of thread count.
pub(crate) fn collect_crossing<const D: usize>(
    points: &[Point<D>],
    lists: &SharedLists,
    side_ids: &[u32],
    sep: &Separator<D>,
    eps_scale: f64,
) -> (Vec<CrossingBall<D>>, Vec<u32>, u64) {
    let relaxed = eps_scale < 1.0;
    let scan = |ids: &[u32]| {
        let mut crossing = Vec::new();
        let mut unbounded = Vec::new();
        let mut eps_skips = 0u64;
        for &i in ids {
            let r_sq = lists.radius_sq(i as usize);
            if !r_sq.is_finite() {
                unbounded.push(i);
                continue;
            }
            let r = r_sq.sqrt();
            let ball = Ball::new(points[i as usize], r * eps_scale);
            if ball.crosses(sep) {
                crossing.push(CrossingBall { owner: i, ball });
            } else if relaxed && Ball::new(points[i as usize], r).crosses(sep) {
                eps_skips += 1;
            }
        }
        (crossing, unbounded, eps_skips)
    };
    if side_ids.len() < PAR_SCAN_CUTOFF {
        return scan(side_ids);
    }
    let per_chunk: Vec<(Vec<CrossingBall<D>>, Vec<u32>, u64)> =
        side_ids.par_chunks(PAR_SCAN_CUTOFF).map(scan).collect();
    let mut crossing = Vec::new();
    let mut unbounded = Vec::new();
    let mut eps_skips = 0u64;
    for (c, u, s) in per_chunk {
        crossing.extend(c);
        unbounded.extend(u);
        eps_skips += s;
    }
    (crossing, unbounded, eps_skips)
}

/// Exhaustively merge every point of `opposite` into the lists of the
/// `unbounded` owners (and vice versa candidates are handled by the
/// caller's other direction). Rare path; linear in
/// `|unbounded| · |opposite|`. Owners are corrected in parallel when the
/// pair count is large — each owner writes only its own list, and
/// `merge_candidate` is order-independent, so the result is deterministic.
pub(crate) fn correct_unbounded<const D: usize>(
    soa: &SoaPoints<D>,
    lists: &SharedLists,
    unbounded: &[u32],
    opposite: &[u32],
) {
    // Deliberately f64-only in every precision tier: an unbounded owner has
    // an infinite cached radius (its list is under-full), so the certified
    // f32 lower bound can never reject a candidate here — a f32 pre-pass
    // would be pure overhead on an already rare path.
    let one = |&o: &u32| {
        // One blocked distance sweep per owner, then a batched merge (the
        // cached radius is loaded once per batch; `merge_candidate`
        // re-checks under the lock, so the lists are identical to the
        // per-candidate path).
        let po = soa.point(o as usize);
        let mut dists = vec![0.0; opposite.len()];
        soa.dist_sq_gather(&po, opposite, &mut dists);
        lists.merge_batch(o as usize, opposite, &dists, f64::INFINITY);
    };
    if unbounded.len().saturating_mul(opposite.len()) >= PAR_SCAN_CUTOFF && unbounded.len() > 1 {
        unbounded.par_iter().for_each(one);
    } else {
        unbounded.iter().for_each(one);
    }
}

/// Query-structure correction over an explicit crossing-ball set.
///
/// Builds the Section 3 structure on the crossing balls and queries it with
/// every point of the subset; a point strictly inside a crossing ball from
/// the *opposite* side is merged into that ball owner's list.
///
/// In the mixed precision tier (`qcfg.precision`) the leaf cover scans run
/// through the tiered f32 kernel inside the tree, and the owner-distance
/// merge pass pre-rejects owners whose certified f32 lower bound already
/// exceeds the owner's cached squared radius: `merge_candidate` would
/// fast-reject those in f64 anyway (the cached radius only shrinks, so a
/// stale read over-admits), which keeps the lists byte-identical while
/// skipping the f64 gather for them.
///
/// Returns the work–depth cost of the build plus the query sweep, and the
/// accumulated precision-tier filter counters.
pub(crate) fn correct_via_query<const D: usize, const E: usize>(
    soa: &SoaPoints<D>,
    lists: &SharedLists,
    subset: &[u32],
    crossing: &[CrossingBall<D>],
    qcfg: QueryTreeConfig,
    seed: u64,
) -> (CostProfile, FilterStats) {
    if crossing.is_empty() || subset.is_empty() {
        return (CostProfile::zero(), FilterStats::default());
    }
    let balls: Vec<Ball<D>> = crossing.iter().map(|c| c.ball).collect();
    let tree = QueryTree::build::<E>(&balls, qcfg, seed);
    let height = tree.stats().height as u64;
    let mixed = qcfg.precision.is_mixed();

    // Every subset point queries the structure; merges go through the
    // shared lists (order-independent). Chunks reuse one set of scratch
    // buffers: the leaf cover test and the owner-distance evaluation both
    // run through the blocked SoA kernels.
    let process = |ids: &[u32]| -> FilterStats {
        let mut stats = FilterStats::default();
        let mut scratch32: Vec<f32> = Vec::new();
        let mut scratch: Vec<f64> = Vec::new();
        let mut hits: Vec<u32> = Vec::new();
        let mut owners: Vec<u32> = Vec::new();
        let mut survivors: Vec<u32> = Vec::new();
        let mut survivor_d32: Vec<f32> = Vec::new();
        let mut dists32: Vec<f32> = Vec::new();
        let mut dists: Vec<f64> = Vec::new();
        for &p_id in ids {
            let p = soa.point(p_id as usize);
            hits.clear();
            tree.covering_into(&p, true, &mut scratch32, &mut scratch, &mut hits, &mut stats);
            // Which side is this point on? Determined by ownership: a point
            // corrects only balls owned by the *other* side. We recover the
            // side from the crossing metadata at merge time instead of
            // re-classifying against the separator (robust to surface ties).
            owners.clear();
            for &ball_local in &hits {
                let o = crossing[ball_local as usize].owner;
                if o != p_id {
                    owners.push(o);
                }
            }
            if owners.is_empty() {
                continue;
            }
            let bound = mixed.then(|| soa.f32_bound(&p));
            let merge_list: &[u32] = if let Some(bound) = bound {
                // f32 pre-pass: reject owners whose certified lower bound
                // already exceeds their cached squared radius. Safe because
                // the cached radius is monotone non-increasing, so
                // `lb > cached_now ⟹ d64 > cached_at_merge` and
                // `merge_candidate` would be a no-op.
                soa.dist_sq_f32_gather_into(&p, &owners, &mut dists32);
                survivors.clear();
                survivor_d32.clear();
                for (&o, &d32) in owners.iter().zip(&dists32) {
                    if bound.lower_bound(d32) > lists.radius_sq(o as usize) {
                        stats.f32_rejects += 1;
                    } else {
                        survivors.push(o);
                        survivor_d32.push(d32);
                    }
                }
                stats.f64_confirms += survivors.len() as u64;
                &survivors
            } else {
                &owners
            };
            if merge_list.is_empty() {
                continue;
            }
            soa.dist_sq_gather_into(&p, merge_list, &mut dists);
            if let Some(bound) = bound {
                // Empirical bound validation: the exact distance can never
                // fall below the certified f32 lower bound (DESIGN.md §17).
                // CI gates this counter at zero.
                for (&d64, &d32) in dists.iter().zip(&survivor_d32) {
                    if bound.lower_bound(d32) > d64 {
                        stats.unsafe_margin_hits += 1;
                    }
                }
            }
            for (&o, &d) in merge_list.iter().zip(&dists) {
                lists.merge_candidate(o as usize, p_id, d);
            }
        }
        stats
    };
    let stats = if subset.len() >= PAR_SCAN_CUTOFF {
        subset
            .par_chunks(PAR_SCAN_CUTOFF)
            .fold(FilterStats::default, |mut acc, chunk| {
                acc.merge(&process(chunk));
                acc
            })
            .reduce(FilterStats::default, |mut a, b| {
                a.merge(&b);
                a
            })
    } else {
        process(subset)
    };

    // Build cost, then one query round of depth = tree height + leaf scan,
    // executed by all subset points in parallel (unit rounds each).
    let cost = tree
        .build_cost()
        .then(CostProfile::rounds(height + 1, subset.len() as u64))
        .with_punt();
    (cost, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::solve_subset_brute;
    use crate::KnnResult;
    use sepdc_geom::Hyperplane;

    /// Points on a line, split at x = mid; solve sides independently, then
    /// correct and compare against the global answer.
    fn line_fixture(
        n: usize,
        k: usize,
        mid: f64,
    ) -> (Vec<Point<1>>, SharedLists, Vec<u32>, Vec<u32>, Separator<1>) {
        let points: Vec<Point<1>> = (0..n).map(|i| Point::from([i as f64])).collect();
        let sep: Separator<1> = Hyperplane::axis_aligned(0, mid).into();
        let left: Vec<u32> = (0..n as u32).filter(|&i| (i as f64) < mid).collect();
        let right: Vec<u32> = (0..n as u32).filter(|&i| (i as f64) > mid).collect();
        let lists = SharedLists::new(n, k);
        // Solve each side independently (mimicking recursion).
        let mut tmp = KnnResult::new(n, k);
        solve_subset_brute(&points, &left, &mut tmp);
        solve_subset_brute(&points, &right, &mut tmp);
        for i in 0..n {
            lists.set_list(i, tmp.neighbors(i));
        }
        (points, lists, left, right, sep)
    }

    #[test]
    fn collect_crossing_identifies_boundary_balls() {
        let (points, lists, left, _right, sep) = line_fixture(20, 1, 9.5);
        let (crossing, unbounded, eps_skips) = collect_crossing(&points, &lists, &left, &sep, 1.0);
        assert!(unbounded.is_empty());
        assert_eq!(eps_skips, 0);
        // Only the point at x = 9 has a subset ball (radius 1) crossing
        // x = 9.5.
        assert_eq!(crossing.len(), 1);
        assert_eq!(crossing[0].owner, 9);
    }

    #[test]
    fn collect_crossing_eps_shrink_drops_and_counts_marginal_balls() {
        let (points, lists, left, _right, sep) = line_fixture(20, 1, 9.5);
        // The x = 9 ball has radius 1 and crosses x = 9.5 by exactly 0.5;
        // shrinking to radius 0.4 drops it and counts one ε skip.
        let (crossing, unbounded, eps_skips) = collect_crossing(&points, &lists, &left, &sep, 0.4);
        assert!(unbounded.is_empty());
        assert!(crossing.is_empty());
        assert_eq!(eps_skips, 1);
        // A shrink that still crosses keeps the ball and counts nothing.
        let (crossing, _, eps_skips) = collect_crossing(&points, &lists, &left, &sep, 0.9);
        assert_eq!(crossing.len(), 1);
        assert_eq!(eps_skips, 0);
    }

    #[test]
    fn query_correction_fixes_boundary_lists() {
        let (points, lists, left, right, sep) = line_fixture(20, 2, 9.5);
        let mut crossing = Vec::new();
        for ids in [&left, &right] {
            let (c, u, _) = collect_crossing(&points, &lists, ids, &sep, 1.0);
            assert!(u.is_empty());
            crossing.extend(c);
        }
        let subset: Vec<u32> = (0..20).collect();
        let soa = SoaPoints::from_points(&points);
        correct_via_query::<1, 2>(
            &soa,
            &lists,
            &subset,
            &crossing,
            QueryTreeConfig::default(),
            7,
        );
        let result = lists.into_result();
        let oracle = crate::brute::brute_force_knn(&points, 2);
        result.same_distances(&oracle, 1e-12).unwrap();
    }

    #[test]
    fn query_correction_tiers_agree_and_mixed_reports_stats() {
        use crate::config::Precision;
        let subset: Vec<u32> = (0..20).collect();
        let mut results = Vec::new();
        let mut stats_by_tier = Vec::new();
        for precision in [Precision::Exact, Precision::Mixed] {
            let (points, lists, left, right, sep) = line_fixture(20, 2, 9.5);
            let mut crossing = Vec::new();
            for ids in [&left, &right] {
                let (c, _, _) = collect_crossing(&points, &lists, ids, &sep, 1.0);
                crossing.extend(c);
            }
            let soa = SoaPoints::from_points(&points);
            let qcfg = QueryTreeConfig {
                precision,
                ..QueryTreeConfig::default()
            };
            let (_, stats) = correct_via_query::<1, 2>(&soa, &lists, &subset, &crossing, qcfg, 7);
            stats_by_tier.push(stats);
            results.push(lists.into_result());
        }
        // Byte-identical lists across tiers.
        for i in 0..20 {
            assert_eq!(results[0].neighbors(i), results[1].neighbors(i));
        }
        let exact = &stats_by_tier[0];
        let mixed = &stats_by_tier[1];
        assert_eq!(exact.f32_rejects, 0);
        assert_eq!(exact.f64_confirms, 0);
        // Mixed mode actually exercised the filter and never observed a
        // violation of the certified bound.
        assert!(mixed.f32_rejects + mixed.f64_confirms > 0);
        assert_eq!(mixed.unsafe_margin_hits, 0);
        assert_eq!(mixed.eps_skips, 0);
    }

    #[test]
    fn unbounded_owners_are_corrected_exhaustively() {
        // Left side has a single point: its subset ball is unbounded.
        let points: Vec<Point<1>> = (0..10).map(|i| Point::from([i as f64])).collect();
        let lists = SharedLists::new(10, 1);
        let left = vec![0u32];
        let right: Vec<u32> = (1..10).collect();
        let mut tmp = KnnResult::new(10, 1);
        solve_subset_brute(&points, &right, &mut tmp);
        for i in 1..10 {
            lists.set_list(i, tmp.neighbors(i));
        }
        let sep: Separator<1> = Hyperplane::axis_aligned(0, 0.5).into();
        let (_, unbounded, _) = collect_crossing(&points, &lists, &left, &sep, 1.0);
        assert_eq!(unbounded, vec![0]);
        let soa = SoaPoints::from_points(&points);
        correct_unbounded(&soa, &lists, &unbounded, &right);
        assert_eq!(lists.radius_sq(0), 1.0);
    }

    #[test]
    fn empty_crossing_is_free() {
        let points: Vec<Point<1>> = (0..4).map(|i| Point::from([i as f64])).collect();
        let lists = SharedLists::new(4, 1);
        let soa = SoaPoints::from_points(&points);
        let (cost, stats) = correct_via_query::<1, 2>(
            &soa,
            &lists,
            &[0, 1, 2, 3],
            &[],
            QueryTreeConfig::default(),
            1,
        );
        assert_eq!(cost, CostProfile::zero());
        assert_eq!(stats, FilterStats::default());
    }
}
