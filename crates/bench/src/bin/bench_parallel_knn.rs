//! Wall-clock trajectory bench for `parallel_knn` (the Section 6
//! algorithm) across the standard workloads.
//!
//! ```sh
//! cargo run --release -p sepdc-bench --bin bench_parallel_knn          # full
//! cargo run --release -p sepdc-bench --bin bench_parallel_knn -- --smoke
//! ```
//!
//! Writes `BENCH_parallel_knn.json` (override the path with
//! `SEPDC_BENCH_OUT`) recording, per case: median wall time over the
//! repetitions, throughput, per-case peak RSS (`VmHWM` from
//! `/proc/self/status`, with the kernel's peak accounting reset via
//! `/proc/self/clear_refs` before each case so rows don't inherit the
//! high-water mark of earlier, larger cases), and the fast-correction /
//! punt counters that explain where the time went. The emitted JSON embeds,
//! under `"reports"`, the full [`sepdc_core::RunReport`] of each case's
//! last repetition — the same schema `sepdc knn --report` writes — so the
//! phase timings and per-depth histograms behind every table row travel
//! with the numbers.

use sepdc_bench::harness::{host_info, json_str, timed, HostInfo, Table};
use sepdc_core::{parallel_knn, KnnDcConfig, KnnResult, ParallelDcOutput, Precision};
use sepdc_workloads::Workload;

struct Case {
    workload: Workload,
    n: usize,
    k: usize,
}

fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

/// Reset the kernel's peak-RSS accounting (`VmHWM`) so the next
/// [`vm_hwm_kb`] read reflects only the allocations made since this call.
/// Writing `"5"` to `/proc/self/clear_refs` is Linux-specific and may be
/// unavailable (permissions, non-Linux); best-effort — on failure the old
/// cumulative semantics degrade gracefully.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// One embedded run report:
/// (row label, median seconds, RunReport JSON, FNV-1a result hash).
type CaseReport = (String, f64, String, u64);

/// FNV-1a-64 over every `(idx, dist_sq)` pair of the result, in row order
/// with raw f64 bits — a byte-parity fingerprint the CI smoke can compare
/// across tiers and against the checked-in baseline artifact.
fn result_hash(knn: &KnnResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for i in 0..knn.len() {
        for n in knn.neighbors(i) {
            n.idx.to_le_bytes().iter().copied().for_each(&mut eat);
            n.dist_sq.to_bits().to_le_bytes().iter().copied().for_each(&mut eat);
        }
    }
    h
}

fn run_case<const D: usize, const E: usize>(
    table: &mut Table,
    reports: &mut Vec<CaseReport>,
    c: &Case,
    reps: usize,
    precision: Precision,
) -> (f64, ParallelDcOutput<D>) {
    reset_peak_rss();
    let pts = c.workload.generate::<D>(c.n, 7);
    let cfg = KnnDcConfig::new(c.k).with_seed(3).with_precision(precision);
    let mut secs = Vec::with_capacity(reps);
    let mut out = None;
    for _ in 0..reps {
        let (o, dt) = timed(|| parallel_knn::<D, E>(&pts, &cfg));
        secs.push(dt);
        out = Some(o);
    }
    secs.sort_by(f64::total_cmp);
    let median = secs[secs.len() / 2];
    let out = out.unwrap();
    let punts = out.stats.punts_threshold + out.stats.punts_marching;
    let hwm = vm_hwm_kb().map_or_else(|| "n/a".into(), |kb| format!("{:.1}", kb as f64 / 1024.0));
    // The default (mixed) tier keeps the bare label the CI perf smoke
    // looks up; the exact-tier A/B row rides under a suffixed label.
    let tier_suffix = match precision {
        Precision::Mixed => "",
        Precision::Exact => " [exact]",
    };
    let label = format!(
        "{} {}d n={} k={}{tier_suffix}",
        c.workload.name(),
        D,
        c.n,
        c.k
    );
    reports.push((label.clone(), median, out.report.to_json(), result_hash(&out.knn)));
    table.row(
        label,
        vec![
            format!("{:.1}", median * 1e3),
            format!("{:.2}", c.n as f64 / median / 1e6),
            hwm,
            out.stats.fast_corrections.to_string(),
            punts.to_string(),
            out.meter.marching_balls.to_string(),
            out.meter.march_pruned.to_string(),
            out.meter.distance_evals.to_string(),
        ],
    );
    (median, out)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // --acceptance: run only the PR-1 acceptance case once — the CI
    // perf-regression smoke compares its median against the checked-in
    // baseline artifact.
    let acceptance_only = std::env::args().any(|a| a == "--acceptance");
    let (reps, scale) = if smoke { (1, 25) } else { (3, 1) };
    let reps = if acceptance_only { 1 } else { reps };

    let mut table = Table::new(
        "BENCH parallel_knn wall-clock trajectory",
        &[
            "case",
            "median ms",
            "Mpts/s",
            "peak RSS MB",
            "fast",
            "punts",
            "march steps",
            "pruned",
            "dist evals",
        ],
    );

    let cases_2d: Vec<Case> = if acceptance_only {
        vec![Case {
            workload: Workload::UniformCube,
            n: 100_000,
            k: 4,
        }]
    } else {
        vec![
            Case {
                workload: Workload::UniformCube,
                n: 25_000 / scale,
                k: 4,
            },
            Case {
                workload: Workload::UniformCube,
                n: 50_000 / scale,
                k: 4,
            },
            Case {
                workload: Workload::UniformCube,
                n: 100_000 / scale,
                k: 4,
            },
            Case {
                workload: Workload::Clusters,
                n: 50_000 / scale,
                k: 4,
            },
            Case {
                workload: Workload::SphereShell,
                n: 50_000 / scale,
                k: 4,
            },
            Case {
                workload: Workload::TwoSlabs,
                n: 50_000 / scale,
                k: 4,
            },
        ]
    };
    let mut acceptance: Option<f64> = None;
    let mut reports: Vec<CaseReport> = Vec::new();
    for c in &cases_2d {
        let (median, out) = run_case::<2, 3>(&mut table, &mut reports, c, reps, Precision::Mixed);
        out.knn.check_invariants().expect("invariants");
        // Tier A/B rides on the full-size acceptance case whether this is
        // the full artifact run or the CI `--acceptance` smoke (the smoke's
        // scaled-down cases never match).
        if c.workload == Workload::UniformCube && c.n == 100_000 {
            acceptance = Some(median);
            // Tier A/B on the acceptance case: the exact tier must produce
            // byte-identical lists (hash parity), the mixed tier must never
            // observe a violation of the certified f32 lower bound, and the
            // f64 correction work must measurably drop. Any failure exits
            // nonzero — this is the CI gate of the precision tier, not just
            // a report.
            let (exact_median, exact_out) =
                run_case::<2, 3>(&mut table, &mut reports, c, reps, Precision::Exact);
            let mixed_hash = reports[reports.len() - 2].3;
            let exact_hash = reports[reports.len() - 1].3;
            assert_eq!(
                mixed_hash, exact_hash,
                "precision tiers disagree on the acceptance case"
            );
            assert_eq!(
                out.meter.unsafe_margin_hits, 0,
                "mixed tier observed certified-bound violations on the acceptance case"
            );
            assert!(
                out.meter.correction_dist_evals < exact_out.meter.correction_dist_evals,
                "mixed tier did not reduce f64 correction dist evals \
                 ({} vs exact {})",
                out.meter.correction_dist_evals,
                exact_out.meter.correction_dist_evals,
            );
            table.note(format!(
                "precision tier A/B (acceptance case): f64 correction dist evals \
                 {} (mixed) vs {} (exact) = {:.1}% fewer; {} f32 rejects, \
                 {} certified-bound violations; result hash {:#018x} both \
                 tiers; mixed {:.3} s vs exact {:.3} s",
                out.meter.correction_dist_evals,
                exact_out.meter.correction_dist_evals,
                100.0
                    * (1.0
                        - out.meter.correction_dist_evals as f64
                            / exact_out.meter.correction_dist_evals.max(1) as f64),
                out.meter.f32_rejects,
                out.meter.unsafe_margin_hits,
                mixed_hash,
                median,
                exact_median,
            ));
        }
    }
    if !acceptance_only {
        let c3 = Case {
            workload: Workload::UniformCube,
            n: 50_000 / scale,
            k: 4,
        };
        let (_, out3) = run_case::<3, 4>(&mut table, &mut reports, &c3, reps, Precision::Mixed);
        out3.knn.check_invariants().expect("invariants");
    }

    table.note(format!(
        "reps={reps}, median reported; peak RSS = VmHWM with per-case reset \
         via /proc/self/clear_refs (cumulative fallback where unavailable)"
    ));
    table.note(
        "PR-1 acceptance case UniformCube 2d n=100k k=4: seed baseline 2.54 s \
         -> 1.57 s after the leaf-allocation fix -> ~0.6 s after the arena \
         partition + flat store + centerpoint sampling fix -> ~0.36 s after \
         the radon stack kernel -> 1.67x faster again with the SoA blocked \
         kernels + AABB-pruned march (this PR; same-container A/B: pre-SoA \
         HEAD re-measured 0.81 s vs 0.49 s, the recording container having \
         slowed ~2.2x since the 0.36 s row was taken; single-core throughout)"
            .to_string(),
    );
    if let Some(a) = acceptance {
        table.note(format!("this run's acceptance-case median: {:.3} s", a));
    }
    table.note(
        "run-report recording (cfg.record) is ON here; A/B against record=false \
         on the acceptance case shows the overhead inside run-to-run noise (<2%)"
            .to_string(),
    );
    if smoke {
        table.note("--smoke run: n scaled down 25x, 1 rep (CI sanity only)".to_string());
    }
    if acceptance_only {
        table.note("--acceptance run: acceptance case only, 1 rep (CI perf smoke)".to_string());
    }
    let host = host_info();
    host.warn_if_single_core();
    table.note(host.describe());
    table.print();

    let out_path =
        std::env::var("SEPDC_BENCH_OUT").unwrap_or_else(|_| "BENCH_parallel_knn.json".to_string());
    std::fs::write(&out_path, bench_json(&table, &reports, &host)).expect("write bench json");
    eprintln!("[wrote {out_path}]");
}

/// Combined artifact: the human-oriented table plus one full run report
/// per case, so `python3 -c "json.load(...)"`-style consumers and the
/// `sepdc report` pretty-printer both work off the same file.
fn bench_json(table: &Table, reports: &[CaseReport], host: &HostInfo) -> String {
    let mut s = String::from("{\n\"host\": ");
    s.push_str(&host.to_json());
    s.push_str(",\n\"table\":\n");
    s.push_str(table.to_json().trim_end());
    s.push_str(",\n\"reports\": [\n");
    for (i, (label, median, report, hash)) in reports.iter().enumerate() {
        s.push_str(&format!(
            "{{ \"label\": {}, \"median_ms\": {:.3}, \"result_hash\": \"{hash:#018x}\", \
             \"report\":\n{} }}{}\n",
            json_str(label),
            median * 1e3,
            report.trim_end(),
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    s.push_str("]\n}\n");
    s
}
