//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use sepdc::geom::ball::Ball;
use sepdc::geom::matrix::Rotation;
use sepdc::geom::point::Point;
use sepdc::geom::radon::{in_simplex_hull, radon_point};
use sepdc::geom::shape::{Separator, Side};
use sepdc::geom::sphere::Sphere;
use sepdc::geom::stereo::{lift, unlift, ConformalMap};

fn coord() -> impl Strategy<Value = f64> {
    // Bounded, finite coordinates; degenerate configs arise naturally.
    (-50.0f64..50.0).prop_map(|x| (x * 16.0).round() / 16.0)
}

fn point2() -> impl Strategy<Value = Point<2>> {
    [coord(), coord()].prop_map(Point::from)
}

fn point3() -> impl Strategy<Value = Point<3>> {
    [coord(), coord(), coord()].prop_map(Point::from)
}

proptest! {
    #[test]
    fn lift_is_on_unit_sphere_and_invertible(p in point3()) {
        let x: Point<4> = lift(&p);
        prop_assert!((x.norm() - 1.0).abs() < 1e-9);
        let back: Point<3> = unlift(&x, 1e-14).unwrap();
        prop_assert!(back.dist(&p) < 1e-6 * (1.0 + p.norm()));
    }

    #[test]
    fn rotation_is_isometric(p in point3(), q in point3()) {
        let v = Point::<3>::from([0.6, 0.8, 0.0]);
        let rot = Rotation::to_last_axis(&v);
        let (rp, rq) = (rot.apply(&p), rot.apply(&q));
        prop_assert!((rp.dist(&rq) - p.dist(&q)).abs() < 1e-9);
        prop_assert!(rot.apply_inverse(&rp).dist(&p) < 1e-9);
    }

    #[test]
    fn sphere_side_matches_signed_distance(c in point2(), r in 0.1f64..20.0, p in point2()) {
        let s = Sphere::new(c, r);
        let sd = s.signed_distance(&p);
        match s.side(&p) {
            Side::Interior => prop_assert!(sd < 0.0),
            Side::Exterior => prop_assert!(sd > 0.0),
            Side::Surface => prop_assert!(sd.abs() <= 1e-9),
        }
    }

    #[test]
    fn ball_reaches_at_least_one_side(
        c in point2(), r in 0.1f64..10.0,
        bc in point2(), br in 0.0f64..10.0,
    ) {
        let sep: Separator<2> = Sphere::new(c, r).into();
        let b = Ball::new(bc, br);
        prop_assert!(b.touches_interior_of(&sep) || b.touches_exterior_of(&sep));
        // Crossing implies touching both sides.
        if b.crosses(&sep) {
            prop_assert!(b.touches_interior_of(&sep) && b.touches_exterior_of(&sep));
        }
    }

    #[test]
    fn circumsphere_passes_through_inputs(
        a in point2(), b in point2(), c in point2(),
    ) {
        if let Some(s) = Sphere::circumsphere(&[a, b, c], 1e-9) {
            for p in [a, b, c] {
                let rel = s.signed_distance(&p).abs() / (1.0 + s.radius);
                prop_assert!(rel < 1e-5, "rel err {rel}");
            }
        }
    }

    #[test]
    fn radon_point_lies_in_both_hulls(
        a in point2(), b in point2(), c in point2(), d in point2(),
    ) {
        if let Some(r) = radon_point(&[a, b, c, d], 1e-9) {
            let pts = [a, b, c, d];
            let pos: Vec<Point<2>> = r.positive.iter().map(|&i| pts[i]).collect();
            let neg: Vec<Point<2>> = r.negative.iter().map(|&i| pts[i]).collect();
            // Hull membership check only valid for simplex-sized sets.
            if pos.len() <= 3 {
                prop_assert!(in_simplex_hull(&r.point, &pos, 1e-4));
            }
            if neg.len() <= 3 {
                prop_assert!(in_simplex_hull(&r.point, &neg, 1e-4));
            }
        }
    }

    #[test]
    fn conformal_pullback_consistent_with_forward_map(
        zc in [(-0.5f64..0.5), (-0.5f64..0.5), (-0.5f64..0.5)],
        g in [(-1.0f64..1.0), (-1.0f64..1.0), (-1.0f64..1.0)],
        probe in point2(),
    ) {
        let z = Point::<3>::from(zc);
        prop_assume!(z.norm() < 0.9);
        let gv = Point::<3>::from(g);
        prop_assume!(gv.norm() > 0.1);
        let map = ConformalMap::<2, 3>::from_centerpoint(&z);
        if let Some(sep) = map.pull_back_great_circle(&gv, 1e-12) {
            let w = map.apply(&probe).unwrap();
            let fwd = gv.normalized(1e-12).unwrap().dot(&w);
            let sd = sep.signed_distance(&probe);
            // Away from the surface, forward sign and geometric side must
            // be consistent up to a global flip — verified via a second
            // probe. Here check only the degenerate-free invariant: points
            // with fwd == 0 are on the surface.
            if fwd.abs() < 1e-12 {
                prop_assert!(sd.abs() < 1e-5 * (1.0 + probe.norm_sq()));
            }
        }
    }

    #[test]
    fn separator_split_is_a_partition(
        pts in proptest::collection::vec(point2(), 1..60),
        c in point2(),
        r in 0.1f64..10.0,
    ) {
        let sep: Separator<2> = Sphere::new(c, r).into();
        let counts = sepdc::separator::split_counts(&pts, &sep, 1e-9);
        prop_assert_eq!(counts.total(), pts.len());
        prop_assert_eq!(counts.left() + counts.right(), pts.len());
    }
}
