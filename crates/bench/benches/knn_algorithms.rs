//! Criterion bench: the all-k-NN algorithms head to head (EXP-4's timing
//! columns, under criterion's statistics).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sepdc_core::{kdtree_all_knn, parallel_knn, simple_parallel_knn, KnnDcConfig};
use sepdc_workloads::Workload;
use std::hint::black_box;

fn bench_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_knn_2d_k1");
    group.sample_size(10);
    let cfg = KnnDcConfig::new(1).with_seed(5);
    for e in [13u32, 15] {
        let n = 1usize << e;
        let pts = Workload::UniformCube.generate::<2>(n, 9);
        group.bench_with_input(BenchmarkId::new("kdtree", n), &pts, |b, pts| {
            b.iter(|| black_box(kdtree_all_knn(pts, 1)));
        });
        group.bench_with_input(BenchmarkId::new("simple_s5", n), &pts, |b, pts| {
            b.iter(|| black_box(simple_parallel_knn::<2, 3>(pts, &cfg)));
        });
        group.bench_with_input(BenchmarkId::new("parallel_s6", n), &pts, |b, pts| {
            b.iter(|| black_box(parallel_knn::<2, 3>(pts, &cfg)));
        });
    }
    group.finish();
}

fn bench_adversarial(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_knn_two_slabs");
    group.sample_size(10);
    let cfg = KnnDcConfig::new(1).with_seed(5);
    let pts = Workload::TwoSlabs.generate::<2>(1 << 14, 9);
    group.bench_function("simple_s5", |b| {
        b.iter(|| black_box(simple_parallel_knn::<2, 3>(&pts, &cfg)));
    });
    group.bench_function("parallel_s6", |b| {
        b.iter(|| black_box(parallel_knn::<2, 3>(&pts, &cfg)));
    });
    group.finish();
}

criterion_group!(benches, bench_all, bench_adversarial);
criterion_main!(benches);
