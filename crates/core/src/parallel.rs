//! *Parallel Nearest Neighborhood* (Section 6): the random `O(log n)` time,
//! `n` processor k-nearest-neighbor algorithm — the paper's headline
//! result.
//!
//! The recursion partitions with a **sphere separator** instead of a
//! hyperplane, so only `ι_B(S) = O(m^μ)` balls cross the cut w.h.p.
//! (Lemma 6.4), and the correction step can afford to be aggressive:
//!
//! * **fast path** — march the crossing balls down the opposite partition
//!   subtree (Section 6.2). Reachable-leaf computation is `O(1)` rounds
//!   with `h·2^h` processors (Lemma 6.3); candidate gathering and the
//!   k-closest fix are `O(1)` scan rounds. Succeeds when no level holds
//!   more than `m^{1-η}` active balls (Lemma 6.2, w.h.p.).
//! * **punt** — when the node was unlucky (too many crossers, or the march
//!   exploded), fall back to the Section 3 query structure, paying
//!   `O(log m)` rounds at this node. The Punting Lemma (4.1) shows the
//!   punts along any root-leaf path sum to `O(log n)` w.h.p., so the whole
//!   algorithm stays `O(log n)` depth.

use crate::config::{eps_radius_scale, KnnDcConfig};
use crate::correction::{collect_crossing, correct_unbounded, correct_via_query, CrossingBall};
use crate::query::QueryTreeConfig;
use crate::error::{validate_points, SepdcError};
use crate::knn::{brute_list_soa_into, KnnResult};
use crate::partition_tree::{
    march_arena_par, partition_in_place_par, PartitionNode, PartitionTree,
};
use crate::report::{cost_counters, meter_counters, Phase, RunRecorder, RunReport};
use crate::seeding::{child_seed, punt_seed};
use crate::shared::SharedLists;
use crate::splitter::splitter_for;
use rayon::prelude::*;
use sepdc_geom::aabb::Aabb;
use sepdc_geom::point::Point;
use sepdc_geom::soa::{FilterStats, SoaPoints};
use sepdc_scan::cost::{CostMeter, MeterSnapshot};
use sepdc_scan::CostProfile;
use sepdc_separator::SearchOutcome;

/// Minimum node size before the centers gather runs in parallel (matches
/// the in-place partition cutoff: below this the memcpy is cheaper than
/// the fork).
const GATHER_PAR_CUTOFF: usize = 1 << 14;
/// Minimum right-subtree arena length before the postorder index remap
/// fans out across the pool.
const REMAP_PAR_CUTOFF: usize = 1 << 14;
/// Chunk granularity for the parallel remap.
const REMAP_PAR_CHUNK: usize = 1 << 12;
/// Minimum crossing-ball count before the candidate-fix loop fans out.
/// Per-crosser fixes are independent ([`SharedLists`] merges are
/// order-independent and idempotent under the row lock), so the split is
/// output-invariant.
const FIX_PAR_MIN_CROSSERS: usize = 32;

/// Statistics from one run of the Section 6 algorithm.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ParallelDcStats {
    /// Partition tree height.
    pub height: usize,
    /// Total crossing balls over all nodes.
    pub total_crossing: u64,
    /// Largest per-node crossing count.
    pub max_node_crossing: usize,
    /// Largest per-node crossing count divided by the node's `m^μ` punt
    /// threshold (> 1 means that node punted).
    pub max_crossing_vs_threshold: f64,
    /// Nodes corrected on the fast path.
    pub fast_corrections: u64,
    /// Nodes that punted because the crossing count exceeded `m^μ`.
    pub punts_threshold: u64,
    /// Nodes that punted because the march exceeded the active-ball limit.
    pub punts_marching: u64,
    /// Largest `max_active_per_level / m^{1-η}` ratio observed in a
    /// *successful* march (Lemma 6.2 says this stays below 1 w.h.p.).
    pub max_marching_ratio: f64,
    /// Base-case leaves.
    pub base_leaves: usize,
    /// Nodes where no separator could split (identical points).
    pub forced_leaves: usize,
    /// Nodes where an *accepted* separator routed every point to one side
    /// (tolerance-counted split disagreed with strict-side routing) and
    /// the recursion fell back to a brute-force leaf instead of recursing
    /// on an unshrunk slice.
    pub degenerate_splits: usize,
    /// Nodes cut off by the automatic depth guard and solved as
    /// brute-force leaves.
    pub depth_forced_leaves: usize,
    /// Unit-time separator candidates drawn.
    pub candidates: u64,
    /// Nodes split by the derandomized halving cut after the random
    /// search exhausted its attempts (the `halving` backend's fallback).
    pub halving_splits: u64,
    /// Nodes where [`Splitter::rescue`](crate::splitter::Splitter::rescue)
    /// re-split a one-sided accepted separator that would otherwise have
    /// become a forced brute leaf (counted in `degenerate_splits` under
    /// the default backend).
    pub halving_rescues: u64,
    /// Nodes split by the BFS/greedy intersection-graph separator (the
    /// `graph` backend).
    pub graph_splits: u64,
}

impl ParallelDcStats {
    fn leaf(forced: bool) -> Self {
        ParallelDcStats {
            base_leaves: 1,
            forced_leaves: usize::from(forced),
            ..Default::default()
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn merge(self, o: Self) -> Self {
        ParallelDcStats {
            height: 1 + self.height.max(o.height),
            total_crossing: self.total_crossing + o.total_crossing,
            max_node_crossing: self.max_node_crossing.max(o.max_node_crossing),
            max_crossing_vs_threshold: self
                .max_crossing_vs_threshold
                .max(o.max_crossing_vs_threshold),
            fast_corrections: self.fast_corrections + o.fast_corrections,
            punts_threshold: self.punts_threshold + o.punts_threshold,
            punts_marching: self.punts_marching + o.punts_marching,
            max_marching_ratio: self.max_marching_ratio.max(o.max_marching_ratio),
            base_leaves: self.base_leaves + o.base_leaves,
            forced_leaves: self.forced_leaves + o.forced_leaves,
            degenerate_splits: self.degenerate_splits + o.degenerate_splits,
            depth_forced_leaves: self.depth_forced_leaves + o.depth_forced_leaves,
            candidates: self.candidates + o.candidates,
            halving_splits: self.halving_splits + o.halving_splits,
            halving_rescues: self.halving_rescues + o.halving_rescues,
            graph_splits: self.graph_splits + o.graph_splits,
        }
    }
}

/// Output of [`parallel_knn`].
pub struct ParallelDcOutput<const D: usize> {
    /// The k-nearest-neighbor lists.
    pub knn: KnnResult,
    /// Work–depth profile (depth is the `O(log n)` quantity of
    /// Theorem 6.1).
    pub cost: CostProfile,
    /// Structural statistics.
    pub stats: ParallelDcStats,
    /// Whole-run event counters.
    pub meter: MeterSnapshot,
    /// The partition tree (reusable for queries and the experiments).
    pub tree: PartitionTree<D>,
    /// The merged observability artifact: config echo, phase timings,
    /// per-depth histograms, and every counter above under one versioned
    /// schema. Phase timings and the depth histogram are empty when
    /// [`KnnDcConfig::record`] is `false`.
    pub report: RunReport,
}

struct Ctx<'a, const D: usize> {
    points: &'a [Point<D>],
    /// Column-major copy of `points` — the batched distance kernels
    /// (leaf solves, Fast-Correction candidate evaluation) read this.
    soa: &'a SoaPoints<D>,
    lists: &'a SharedLists,
    cfg: &'a KnnDcConfig,
    meter: &'a CostMeter,
    obs: &'a RunRecorder,
    base: usize,
    /// Depth at which the recursion stops subdividing.
    depth_limit: usize,
    /// `true` when `depth_limit` came from an explicit
    /// [`KnnDcConfig::max_depth`]: exceeding it is then an error instead
    /// of a brute-force leaf.
    strict_depth: bool,
}

/// Section 6: sphere-separator divide and conquer with fast correction and
/// punting. `E` must be `D + 1`.
///
/// Infallible wrapper around [`try_parallel_knn`] for callers whose inputs
/// are valid by construction.
///
/// # Panics
/// Panics with the [`SepdcError`] message on invalid input: `k = 0`,
/// non-finite coordinates, out-of-range config tunables, or an exceeded
/// explicit `max_depth`. Use [`try_parallel_knn`] to handle these as typed
/// errors instead.
pub fn parallel_knn<const D: usize, const E: usize>(
    points: &[Point<D>],
    cfg: &KnnDcConfig,
) -> ParallelDcOutput<D> {
    try_parallel_knn::<D, E>(points, cfg).unwrap_or_else(|e| panic!("parallel_knn: {e}"))
}

/// Total variant of [`parallel_knn`]: validates once up front (`k`, config
/// tunables, coordinate finiteness — one linear scan) and returns a typed
/// [`SepdcError`] instead of panicking. The recursion itself runs
/// validation-free; after the up-front checks the only reachable error is
/// [`SepdcError::RecursionDepthExceeded`], and only when
/// [`KnnDcConfig::max_depth`] is set explicitly.
pub fn try_parallel_knn<const D: usize, const E: usize>(
    points: &[Point<D>],
    cfg: &KnnDcConfig,
) -> Result<ParallelDcOutput<D>, SepdcError> {
    assert_eq!(E, D + 1, "parallel_knn requires E = D + 1");
    cfg.validate()?;
    validate_points(points)?;
    let t_run = std::time::Instant::now();
    let n = points.len();
    let lists = SharedLists::new(n, cfg.k);
    let meter = CostMeter::new();
    let base = cfg.resolve_base_case(n, D);
    let depth_limit = cfg.resolve_depth_limit(n);
    let obs = RunRecorder::new(cfg.record, depth_limit);
    let soa = SoaPoints::from_points(points);
    let ctx = Ctx {
        points,
        soa: &soa,
        lists: &lists,
        cfg,
        meter: &meter,
        obs: &obs,
        base,
        depth_limit,
        strict_depth: cfg.max_depth.is_some(),
    };
    // The permutation arena: the recursion partitions this buffer in
    // place, handing each recursive call a disjoint `&mut` slice — no
    // per-level id-set clones.
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let (nodes, bounds, cost, stats) = rec::<D, E>(&ctx, &mut perm, cfg.seed, 0)?;
    let snapshot = meter.snapshot();
    let report = build_report::<D>(cfg, n, base, depth_limit, &stats, &snapshot, &cost, &obs)
        .finish(t_run.elapsed());
    Ok(ParallelDcOutput {
        knn: lists.into_result(),
        cost,
        stats,
        meter: snapshot,
        tree: PartitionTree::from_parts_with_bounds(nodes, perm, bounds),
        report,
    })
}

/// Assemble the [`RunReport`] for one Section 6 run; the caller stamps the
/// total wall time via [`RunReport::finish`].
#[allow(clippy::too_many_arguments)]
fn build_report<const D: usize>(
    cfg: &KnnDcConfig,
    n: usize,
    base: usize,
    depth_limit: usize,
    stats: &ParallelDcStats,
    meter: &MeterSnapshot,
    cost: &CostProfile,
    obs: &RunRecorder,
) -> RunReport {
    let mut counters = vec![
        ("stats.height".to_string(), stats.height as f64),
        (
            "stats.total_crossing".to_string(),
            stats.total_crossing as f64,
        ),
        (
            "stats.max_node_crossing".to_string(),
            stats.max_node_crossing as f64,
        ),
        (
            "stats.max_crossing_vs_threshold".to_string(),
            stats.max_crossing_vs_threshold,
        ),
        (
            "stats.fast_corrections".to_string(),
            stats.fast_corrections as f64,
        ),
        (
            "stats.punts_threshold".to_string(),
            stats.punts_threshold as f64,
        ),
        (
            "stats.punts_marching".to_string(),
            stats.punts_marching as f64,
        ),
        (
            "stats.max_marching_ratio".to_string(),
            stats.max_marching_ratio,
        ),
        ("stats.base_leaves".to_string(), stats.base_leaves as f64),
        (
            "stats.forced_leaves".to_string(),
            stats.forced_leaves as f64,
        ),
        (
            "stats.degenerate_splits".to_string(),
            stats.degenerate_splits as f64,
        ),
        (
            "stats.depth_forced_leaves".to_string(),
            stats.depth_forced_leaves as f64,
        ),
        ("stats.candidates".to_string(), stats.candidates as f64),
        (
            "stats.halving_splits".to_string(),
            stats.halving_splits as f64,
        ),
        (
            "stats.halving_rescues".to_string(),
            stats.halving_rescues as f64,
        ),
        ("stats.graph_splits".to_string(), stats.graph_splits as f64),
    ];
    counters.extend(meter_counters(meter));
    counters.extend(cost_counters(cost));
    // Correction-engine view of the meter (same numbers, task-oriented
    // names): total march steps, subtrees skipped by AABB-vs-ball
    // rejection, and distance evaluations spent on marched candidates.
    counters.push((
        "correction.march_steps".to_string(),
        meter.marching_balls as f64,
    ));
    counters.push((
        "correction.march_pruned".to_string(),
        meter.march_pruned as f64,
    ));
    counters.push((
        "correction.dist_evals".to_string(),
        meter.correction_dist_evals as f64,
    ));
    RunReport {
        version: crate::report::RUN_REPORT_VERSION,
        algo: "parallel".to_string(),
        dim: D,
        n,
        k: cfg.k,
        seed: cfg.seed,
        threads: rayon::current_num_threads(),
        wall_ms: 0.0,
        config: config_echo(cfg, base, depth_limit, D),
        phases: obs.phases(),
        counters,
        depth: obs.depth_rows(),
    }
}

/// Config echo shared by the Section 5 and Section 6 reports: the resolved
/// tunables, each as a named `f64`, in a fixed order.
pub(crate) fn config_echo(
    cfg: &KnnDcConfig,
    base: usize,
    depth_limit: usize,
    d: usize,
) -> Vec<(String, f64)> {
    vec![
        ("k".to_string(), cfg.k as f64),
        ("dim".to_string(), d as f64),
        ("base_case".to_string(), base as f64),
        ("mu_epsilon".to_string(), cfg.mu_epsilon),
        ("punt_slack".to_string(), cfg.punt_slack),
        ("eta".to_string(), cfg.eta),
        ("marching_slack".to_string(), cfg.marching_slack),
        ("separator.epsilon".to_string(), cfg.separator.epsilon),
        ("separator.tol".to_string(), cfg.separator.tol),
        (
            "separator.max_attempts".to_string(),
            cfg.separator.max_attempts as f64,
        ),
        (
            "separator.sweep_width".to_string(),
            cfg.separator.sweep_width as f64,
        ),
        ("query.leaf_size".to_string(), cfg.query.leaf_size as f64),
        ("parallel_cutoff".to_string(), cfg.parallel_cutoff as f64),
        ("depth_limit".to_string(), depth_limit as f64),
        ("record".to_string(), f64::from(u8::from(cfg.record))),
        ("splitter".to_string(), cfg.splitter.code() as f64),
        ("precision".to_string(), cfg.precision.code() as f64),
        ("epsilon".to_string(), cfg.epsilon),
    ]
}

fn leaf_case<const D: usize>(
    ctx: &Ctx<'_, D>,
    ids: &[u32],
    depth: usize,
    forced: bool,
) -> (
    Vec<PartitionNode<D>>,
    Vec<Aabb<D>>,
    CostProfile,
    ParallelDcStats,
) {
    let m = ids.len();
    let t0 = ctx.obs.start();
    // Write each leaf list straight into the shared store through one
    // reused scratch buffer: allocating a full n-point KnnResult here
    // costs O(n) per leaf, which dominates the whole recursion
    // (O(n²/base) total) once n is large. Distances come from the SoA
    // arena's blocked kernel (bit-identical to the scalar scan).
    let k = ctx.lists.k();
    let mut scratch = Vec::with_capacity(k + 1);
    let mut dists = Vec::with_capacity(m);
    for &i in ids {
        brute_list_soa_into(ctx.soa, i, ids, k, &mut dists, &mut scratch);
        ctx.lists.set_list(i as usize, &scratch);
    }
    ctx.meter.add_distance_evals((m * m) as u64);
    ctx.obs.stop(Phase::LeafSolve, t0);
    ctx.obs.leaf(depth);
    (
        // Leaf offsets are relative to this call's own slice; ancestors
        // shift them as they merge child arenas.
        vec![PartitionNode::Leaf {
            start: 0,
            len: m as u32,
        }],
        vec![ctx.soa.aabb_of_ids(ids)],
        // Paper base case: "compute in m time using m processors".
        CostProfile::rounds(m as u64, m as u64),
        ParallelDcStats::leaf(forced),
    )
}

type RecResult<const D: usize> = Result<
    (
        Vec<PartitionNode<D>>,
        Vec<Aabb<D>>,
        CostProfile,
        ParallelDcStats,
    ),
    SepdcError,
>;

fn rec<const D: usize, const E: usize>(
    ctx: &Ctx<'_, D>,
    ids: &mut [u32],
    seed: u64,
    depth: usize,
) -> RecResult<D> {
    let m = ids.len();
    ctx.obs.node(depth);
    if m <= ctx.base {
        return Ok(leaf_case(ctx, ids, depth, false));
    }
    if depth >= ctx.depth_limit {
        // A split sequence of accepted δ-splits cannot reach this depth;
        // getting here means the routing degenerated level after level.
        // With the automatic limit we stay total by absorbing the subset
        // into a brute-force leaf; an explicit max_depth is strict and
        // aborts with a typed error instead.
        if ctx.strict_depth {
            return Err(SepdcError::RecursionDepthExceeded {
                limit: ctx.depth_limit,
            });
        }
        let mut out = leaf_case(ctx, ids, depth, true);
        out.3.depth_forced_leaves = 1;
        return Ok(out);
    }
    let t_split = ctx.obs.start();
    // Gather this node's centers (parallel when the slice is large; the
    // chunked collect preserves index order, so the gather is positionally
    // identical to the serial loop).
    let centers: Vec<Point<D>> = if m >= GATHER_PAR_CUTOFF {
        ids.par_iter().map(|&i| ctx.points[i as usize]).collect()
    } else {
        ids.iter().map(|&i| ctx.points[i as usize]).collect()
    };
    // Split decision, routed through the configured backend. For the
    // default `RandomSphere` this is the speculative candidate sweep,
    // timed as a sub-interval of the split: `separator-search` time is
    // *contained in* `split` time, never summed with it. The sweep always
    // returns the lowest-indexed acceptable candidate, so the output
    // matches the serial one-at-a-time scan for every thread count — and
    // every backend's `split` is likewise a pure function of
    // `(centers, cfg, seed)`.
    let sp = splitter_for::<D, E>(ctx.cfg.splitter);
    let found = ctx.obs.time(Phase::SeparatorSearch, || {
        sp.split(&centers, &ctx.cfg.separator, seed)
    });
    let Some(found) = found else {
        ctx.obs.stop(Phase::Split, t_split);
        return Ok(leaf_case(ctx, ids, depth, true));
    };
    ctx.meter.add_candidates(found.attempts as u64);
    ctx.meter.add_accept();
    ctx.obs.add_candidates(depth, found.attempts as u64);
    let mut sep = found.separator;

    // Carve this call's id slice in place: interior side to the front.
    let mut nl =
        partition_in_place_par(ids, |i| sep.side(&ctx.points[i as usize]).routes_interior());
    let mut rescued = false;
    if nl == 0 || nl == m {
        // The separator was *accepted* — its tolerance-counted split looked
        // balanced — but strict-side routing sent every point to one side
        // (all of them within `tol` of the surface). Ask the backend for a
        // deterministic second-chance cut before giving up.
        if let Some(rsep) = sp.rescue(&centers) {
            let rnl = partition_in_place_par(ids, |i| {
                rsep.side(&ctx.points[i as usize]).routes_interior()
            });
            if rnl > 0 && rnl < m {
                sep = rsep;
                nl = rnl;
                rescued = true;
            }
        }
    }
    ctx.obs.stop(Phase::Split, t_split);
    if nl == 0 || nl == m {
        // No rescue (the default backend's answer) or the rescue routed
        // one-sided too. Recursing here would re-run this call on an
        // unshrunk slice forever; fall back to a brute-force leaf instead.
        let mut out = leaf_case(ctx, ids, depth, true);
        out.3.degenerate_splits = 1;
        return Ok(out);
    }

    // Per-node seeds are a pure function of the root seed and the node's
    // root-to-node path (see [`crate::seeding`]): sibling subtrees draw
    // from unrelated streams no matter which thread builds them.
    let lseed = child_seed(seed, false);
    let rseed = child_seed(seed, true);
    let (lslice, rslice) = ids.split_at_mut(nl);
    let (lres, rres) = if m > ctx.cfg.parallel_cutoff {
        rayon::join(
            || rec::<D, E>(ctx, lslice, lseed, depth + 1),
            || rec::<D, E>(ctx, rslice, rseed, depth + 1),
        )
    } else {
        (
            rec::<D, E>(ctx, lslice, lseed, depth + 1),
            rec::<D, E>(ctx, rslice, rseed, depth + 1),
        )
    };
    let ((lnodes, lbounds, lcost, lstats), (rnodes, rbounds, rcost, rstats)) = (lres?, rres?);

    // Merge the child arenas into one postorder node vec: the right
    // child's node indices shift by the left arena's length, and its leaf
    // ranges (relative to `rslice`) shift by `nl` to become relative to
    // this call's slice. The bounds arena is positional (bounds[i] boxes
    // the subtree rooted at node i), so it concatenates with no rewriting.
    let node_off = lnodes.len() as u32;
    let mut nodes = lnodes;
    nodes.reserve(rnodes.len() + 1);
    let mut bounds = lbounds;
    bounds.reserve(rbounds.len() + 1);
    bounds.extend(rbounds);
    let mut rnodes = rnodes;
    let shift = |nd: &mut PartitionNode<D>| match nd {
        PartitionNode::Internal { left, right, .. } => {
            *left += node_off;
            *right += node_off;
        }
        PartitionNode::Leaf { start, .. } => *start += nl as u32,
    };
    if rnodes.len() >= REMAP_PAR_CUTOFF {
        rnodes
            .par_chunks_mut(REMAP_PAR_CHUNK)
            .for_each(|chunk| chunk.iter_mut().for_each(shift));
    } else {
        rnodes.iter_mut().for_each(shift);
    }
    nodes.append(&mut rnodes);
    let l_root = node_off - 1;
    let r_root = nodes.len() as u32 - 1;

    // ---- Correction (the paper's `Correction` procedure) ----
    // The child calls permuted their halves but the id *sets* are
    // unchanged, so shared reborrows of the two halves are exactly the
    // left/right subsets.
    let (left, right) = ids.split_at(nl);
    let t_cc = ctx.obs.start();
    // ε-mode shrinks each crossing ball's radius by 1/(1+ε) here; the march
    // caps and the punt-path query tree both read the shrunk radii, so the
    // whole correction inherits the relaxation from this single site.
    let eps_scale = eps_radius_scale(ctx.cfg.epsilon);
    let (cross_l, unbounded_l, skips_l) =
        collect_crossing(ctx.points, ctx.lists, left, &sep, eps_scale);
    let (cross_r, unbounded_r, skips_r) =
        collect_crossing(ctx.points, ctx.lists, right, &sep, eps_scale);
    ctx.meter.add_precision(0, 0, 0, skips_l + skips_r);
    correct_unbounded(ctx.soa, ctx.lists, &unbounded_l, right);
    correct_unbounded(ctx.soa, ctx.lists, &unbounded_r, left);
    ctx.obs.stop(Phase::CollectCrossing, t_cc);

    let crossing_total = cross_l.len() + cross_r.len();
    ctx.obs.add_crossing(depth, crossing_total as u64);
    let threshold = ctx.cfg.punt_threshold(m, D);
    let crossing_ratio = crossing_total as f64 / threshold;

    let mut stats = lstats.merge(rstats);
    stats.total_crossing += crossing_total as u64;
    stats.max_node_crossing = stats.max_node_crossing.max(crossing_total);
    stats.max_crossing_vs_threshold = stats.max_crossing_vs_threshold.max(crossing_ratio);
    stats.candidates += found.attempts as u64;
    match found.outcome {
        SearchOutcome::Halving => stats.halving_splits += 1,
        SearchOutcome::Graph => stats.graph_splits += 1,
        SearchOutcome::Random | SearchOutcome::Fallback => {}
    }
    stats.halving_rescues += u64::from(rescued);

    let qseed = punt_seed(seed);
    // The top-level precision knob is authoritative for the punt path even
    // when the caller built the config by struct literal and left
    // `cfg.query` untouched. Its ε stays `cfg.query.epsilon` (0 by
    // default): the punt tree is built over already-shrunk balls, so a
    // second relaxation would double-count ε.
    let qcfg = QueryTreeConfig {
        precision: ctx.cfg.precision,
        ..ctx.cfg.query
    };
    let punt = |crossing: &[CrossingBall<D>]| {
        let (cost, fstats) =
            correct_via_query::<D, E>(ctx.soa, ctx.lists, ids, crossing, qcfg, qseed);
        ctx.meter.add_precision(
            fstats.f32_rejects,
            fstats.f64_confirms,
            fstats.unsafe_margin_hits,
            fstats.eps_skips,
        );
        cost
    };
    let corr_cost = if (crossing_total as f64) >= threshold {
        // Unlucky separator: punt straight to the query structure.
        ctx.meter.add_punt();
        ctx.meter.add_query_build();
        stats.punts_threshold += 1;
        ctx.obs.punt(depth);
        let mut crossing = cross_l;
        crossing.extend(cross_r);
        ctx.obs.time(Phase::PuntCorrection, || punt(&crossing))
    } else {
        // Fast Correction: march each side's crossers down the opposite
        // subtree (already merged into `nodes`, leaf ranges indexing this
        // call's id slice).
        let limit = ctx.cfg.marching_limit(m);
        match ctx.obs.time(Phase::FastCorrection, || {
            try_fast_correction(
                ctx, &cross_l, &cross_r, &nodes, &bounds, l_root, r_root, ids, limit,
            )
        }) {
            Some((work, max_ratio)) => {
                ctx.meter.add_fast_correction();
                stats.fast_corrections += 1;
                ctx.obs.fast_correction(depth);
                stats.max_marching_ratio = stats.max_marching_ratio.max(max_ratio);
                // Lemma 6.3: constant rounds with enough processors — the
                // march, the gather, and the k-closest fix.
                CostProfile {
                    work,
                    depth: 3,
                    ..CostProfile::default()
                }
            }
            None => {
                // March exploded (Lemma 6.2's low-probability event): punt.
                ctx.meter.add_punt();
                ctx.meter.add_query_build();
                stats.punts_marching += 1;
                ctx.obs.punt(depth);
                let mut crossing = cross_l;
                crossing.extend(cross_r);
                ctx.obs.time(Phase::PuntCorrection, || punt(&crossing))
            }
        }
    };

    let local = CostProfile::scan(m as u64).with_candidates(found.attempts as u64);
    let cost = local.then(lcost.alongside(rcost)).then(corr_cost);
    bounds.push(bounds[l_root as usize].union(&bounds[r_root as usize]));
    nodes.push(PartitionNode::Internal {
        sep,
        size: m as u32,
        left: l_root,
        right: r_root,
    });
    Ok((nodes, bounds, cost, stats))
}

/// March both crossing sets down the opposite subtrees and merge the
/// verified candidates. Returns `(work, max_active_ratio)` on success,
/// `None` when either march exceeds `limit` (caller punts).
///
/// `nodes` is the merged child arena (left subtree rooted at `l_root`,
/// right at `r_root`) and `perm` the current call's id slice that the leaf
/// ranges index into.
#[allow(clippy::too_many_arguments)]
fn try_fast_correction<const D: usize>(
    ctx: &Ctx<'_, D>,
    cross_l: &[CrossingBall<D>],
    cross_r: &[CrossingBall<D>],
    nodes: &[PartitionNode<D>],
    bounds: &[Aabb<D>],
    l_root: u32,
    r_root: u32,
    perm: &[u32],
    limit: usize,
) -> Option<(u64, f64)> {
    let mut work = 0u64;
    let mut max_ratio = 0.0f64;
    let limit_f = limit as f64;
    let mixed = ctx.cfg.precision.is_mixed();
    for (crossers, opposite_root) in [(cross_l, r_root), (cross_r, l_root)] {
        if crossers.is_empty() {
            continue;
        }
        let balls: Vec<_> = crossers.iter().map(|c| c.ball).collect();
        // Marching descends only into children whose subtree box the ball
        // intersects: a pruned subtree holds no in-ball points, so the
        // merged lists are identical to the unpruned march's (only the
        // step/abort accounting changes). The parallel driver shards the
        // balls and recombines per-level counts exactly, so steps, prune
        // counts, the active-level high-water mark, and the abort decision
        // all match the monolithic march bit for bit.
        let out = march_arena_par(nodes, opposite_root, perm, &balls, limit, Some(bounds));
        ctx.meter.add_marching(out.total_steps);
        ctx.meter.add_march_pruned(out.pruned);
        if out.aborted {
            return None;
        }
        work += out.total_steps;
        max_ratio = max_ratio.max(out.max_active_per_level as f64 / limit_f);
        // Candidate fix: one blocked distance sweep per crosser, then a
        // batched merge (radius loaded once per batch; `merge_candidate`
        // re-checks under the row lock, so lists are unchanged). In the
        // mixed tier a certified f32 pre-pass drops candidates the merge
        // would reject anyway, so only survivors pay the f64 sweep —
        // `distance_evals` counts survivors, which is the measured saving.
        // Keep the k closest (merge handles it). Each crosser touches only
        // its own owner's row and the shared-store merge is
        // order-independent, so the fix loop fans out across the pool when
        // the crossing set is large; meter totals are added once per side
        // either way.
        let (evals, fstats) = if crossers.len() >= FIX_PAR_MIN_CROSSERS
            && rayon::current_num_threads() > 1
        {
            let (_, evals, stats) = (0..crossers.len())
                .into_par_iter()
                .fold(
                    || (FixScratch::default(), 0u64, FilterStats::default()),
                    |(mut scratch, mut evals, mut stats), ci| {
                        evals += fix_crosser(
                            ctx,
                            mixed,
                            &crossers[ci],
                            &out.candidates[ci],
                            &mut scratch,
                            &mut stats,
                        );
                        (scratch, evals, stats)
                    },
                )
                .reduce(
                    || (FixScratch::default(), 0u64, FilterStats::default()),
                    |mut a, b| {
                        a.1 += b.1;
                        a.2.merge(&b.2);
                        a
                    },
                );
            (evals, stats)
        } else {
            let mut scratch = FixScratch::default();
            let mut stats = FilterStats::default();
            let mut evals = 0u64;
            for (c, cands) in crossers.iter().zip(&out.candidates) {
                evals += fix_crosser(ctx, mixed, c, cands, &mut scratch, &mut stats);
            }
            (evals, stats)
        };
        work += evals;
        ctx.meter.add_distance_evals(evals);
        ctx.meter.add_correction_dist_evals(evals);
        ctx.meter.add_precision(
            fstats.f32_rejects,
            fstats.f64_confirms,
            fstats.unsafe_margin_hits,
            fstats.eps_skips,
        );
    }
    Some((work, max_ratio))
}

/// Reusable buffers for one worker's pass over the candidate-fix loop.
#[derive(Default)]
struct FixScratch {
    dists32: Vec<f32>,
    survivors: Vec<u32>,
    survivor_d32: Vec<f32>,
    dists: Vec<f64>,
}

/// Fix one crossing ball against its marched candidate set; returns the
/// number of f64 distance evaluations spent (the full candidate count in
/// exact mode, only the f32-filter survivors in mixed mode).
///
/// Mixed-tier safety: `merge_batch` admits a candidate only when
/// `d < r²  ∧  d ≤ cached_radius²`, and the cached radius is monotone
/// non-increasing under merges, so a candidate whose certified lower bound
/// satisfies `lb ≥ r²` or `lb > cached` can never be admitted — dropping it
/// before the f64 sweep leaves the lists byte-identical.
fn fix_crosser<const D: usize>(
    ctx: &Ctx<'_, D>,
    mixed: bool,
    c: &CrossingBall<D>,
    cands: &[u32],
    scratch: &mut FixScratch,
    stats: &mut FilterStats,
) -> u64 {
    #[cfg(debug_assertions)]
    for &q in cands {
        debug_assert_ne!(q, c.owner, "opposite subtree cannot contain the owner");
    }
    let owner_pt = ctx.points[c.owner as usize];
    let r_sq = c.ball.radius * c.ball.radius;
    let bound = (mixed && !cands.is_empty()).then(|| ctx.soa.f32_bound(&owner_pt));
    let merge_list: &[u32] = if let Some(bound) = bound {
        ctx.soa
            .dist_sq_f32_gather_into(&owner_pt, cands, &mut scratch.dists32);
        let cached = ctx.lists.radius_sq(c.owner as usize);
        scratch.survivors.clear();
        scratch.survivor_d32.clear();
        for (&q, &d32) in cands.iter().zip(&scratch.dists32) {
            let lb = bound.lower_bound(d32);
            if lb >= r_sq || lb > cached {
                stats.f32_rejects += 1;
            } else {
                scratch.survivors.push(q);
                scratch.survivor_d32.push(d32);
            }
        }
        stats.f64_confirms += scratch.survivors.len() as u64;
        &scratch.survivors
    } else {
        cands
    };
    if merge_list.is_empty() {
        return 0;
    }
    ctx.soa
        .dist_sq_gather_into(&owner_pt, merge_list, &mut scratch.dists);
    if let Some(bound) = bound {
        // Empirical bound validation on every survivor: the exact distance
        // can never fall below the certified f32 lower bound. A hit means
        // the DESIGN.md §17 analysis is violated and the rejects above
        // would have been unsound. CI gates this at zero.
        for (&d64, &d32) in scratch.dists.iter().zip(&scratch.survivor_d32) {
            if bound.lower_bound(d32) > d64 {
                stats.unsafe_margin_hits += 1;
            }
        }
    }
    ctx.lists
        .merge_batch(c.owner as usize, merge_list, &scratch.dists, r_sq);
    merge_list.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_knn;
    use sepdc_workloads::Workload;

    fn check_matches_oracle<const D: usize, const E: usize>(
        w: Workload,
        n: usize,
        k: usize,
        seed: u64,
    ) -> ParallelDcStats {
        let pts = w.generate::<D>(n, seed);
        let cfg = KnnDcConfig::new(k).with_seed(seed ^ 0x5EED);
        let out = parallel_knn::<D, E>(&pts, &cfg);
        let oracle = brute_force_knn(&pts, k);
        out.knn
            .same_distances(&oracle, 1e-9)
            .unwrap_or_else(|e| panic!("{} n={n} k={k}: {e}", w.name()));
        out.knn.check_invariants().unwrap();
        out.stats
    }

    #[test]
    fn matches_oracle_uniform_2d() {
        check_matches_oracle::<2, 3>(Workload::UniformCube, 900, 1, 1);
        check_matches_oracle::<2, 3>(Workload::UniformCube, 900, 4, 2);
    }

    #[test]
    fn matches_oracle_adversarial() {
        check_matches_oracle::<2, 3>(Workload::TwoSlabs, 700, 1, 3);
        check_matches_oracle::<2, 3>(Workload::SphereShell, 700, 2, 4);
        check_matches_oracle::<2, 3>(Workload::NoisyLine, 500, 3, 5);
        check_matches_oracle::<2, 3>(Workload::Grid, 700, 2, 6);
    }

    #[test]
    fn matches_oracle_3d() {
        check_matches_oracle::<3, 4>(Workload::UniformCube, 800, 2, 7);
        check_matches_oracle::<3, 4>(Workload::Clusters, 800, 1, 8);
    }

    #[test]
    fn small_inputs() {
        for n in [1usize, 2, 7, 40] {
            let pts = Workload::UniformCube.generate::<2>(n, 9);
            let cfg = KnnDcConfig::new(1);
            let out = parallel_knn::<2, 3>(&pts, &cfg);
            let oracle = brute_force_knn(&pts, 1);
            out.knn.same_distances(&oracle, 1e-12).unwrap();
        }
    }

    #[test]
    fn duplicates_and_identical() {
        let mut pts = Workload::UniformCube.generate::<2>(300, 10);
        for _ in 0..60 {
            pts.push(pts[5]);
        }
        let cfg = KnnDcConfig::new(2);
        let out = parallel_knn::<2, 3>(&pts, &cfg);
        out.knn
            .same_distances(&brute_force_knn(&pts, 2), 1e-12)
            .unwrap();

        let same = vec![sepdc_geom::Point::<2>::splat(3.0); 120];
        let out2 = parallel_knn::<2, 3>(&same, &cfg);
        assert!(out2.stats.forced_leaves >= 1);
        for i in 0..120 {
            assert_eq!(out2.knn.radius_sq(i), 0.0);
        }
    }

    #[test]
    fn fast_path_dominates_on_uniform_data() {
        let stats = check_matches_oracle::<2, 3>(Workload::UniformCube, 4000, 1, 11);
        assert!(
            stats.fast_corrections > 0,
            "no fast corrections at all: {stats:?}"
        );
        let punts = stats.punts_threshold + stats.punts_marching;
        assert!(
            stats.fast_corrections >= 3 * punts,
            "fast path not dominant: {} fast vs {} punts",
            stats.fast_corrections,
            punts
        );
    }

    #[test]
    fn depth_is_order_log_n() {
        let pts = Workload::UniformCube.generate::<2>(8192, 12);
        let cfg = KnnDcConfig::new(1);
        let out = parallel_knn::<2, 3>(&pts, &cfg);
        let log2n = (8192f64).log2();
        // Depth = O(log n): candidates + scans + O(1) corrections per
        // level, plus the base case (~max(32, log n) rounds at the leaves).
        let bound = 30.0 * log2n + 64.0;
        assert!(
            (out.cost.depth as f64) < bound,
            "depth {} vs bound {bound}",
            out.cost.depth
        );
        assert!(out.stats.height as f64 <= 3.5 * log2n);
    }

    #[test]
    fn partition_tree_covers_all_points() {
        let pts = Workload::Clusters.generate::<2>(1000, 13);
        let cfg = KnnDcConfig::new(1);
        let out = parallel_knn::<2, 3>(&pts, &cfg);
        let mut ids = Vec::new();
        out.tree.collect_point_ids(&mut ids);
        ids.sort_unstable();
        assert_eq!(ids, (0..1000u32).collect::<Vec<_>>());
        assert_eq!(out.tree.size(), 1000);
    }

    #[test]
    fn meter_counts_are_consistent() {
        let pts = Workload::UniformCube.generate::<2>(2000, 14);
        let cfg = KnnDcConfig::new(1);
        let out = parallel_knn::<2, 3>(&pts, &cfg);
        let m = out.meter;
        assert_eq!(
            m.punts,
            out.stats.punts_threshold + out.stats.punts_marching
        );
        assert_eq!(m.fast_corrections, out.stats.fast_corrections);
        assert!(m.separator_candidates >= m.separator_accepts);
        assert!(m.separator_accepts > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = Workload::SphereShell.generate::<2>(600, 15);
        let cfg = KnnDcConfig::new(2).with_seed(123);
        let a = parallel_knn::<2, 3>(&pts, &cfg);
        let b = parallel_knn::<2, 3>(&pts, &cfg);
        a.knn.same_distances(&b.knn, 0.0).unwrap();
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn k_equal_to_eight_still_correct() {
        check_matches_oracle::<2, 3>(Workload::UniformCube, 600, 8, 16);
    }

    #[test]
    fn degenerate_one_sided_separator_forces_leaf() {
        // Regression for the release-mode infinite recursion: the separator
        // search accepts by *tolerance-counted* split (`side_with_tol` with
        // `cfg.separator.tol`), but the recursion routes by strict `side()`
        // (crate EPS). With a large tolerance an accepted separator can
        // route every point to one strict side, and the old
        // `debug_assert!(nl > 0 && nl < m)` let release builds recurse
        // forever on the unshrunk slice.
        //
        // The seed below was found by offline search: the root
        // `find_good_separator` call accepts a separator whose strict
        // routing is one-sided. The precondition is asserted explicitly so
        // the test fails loudly (rather than silently passing) if the
        // candidate stream ever changes.
        let pts = Workload::UniformCube.generate::<2>(64, 0);
        let mut cfg = KnnDcConfig::new(1).with_seed(5028);
        cfg.base_case = Some(16);
        cfg.separator.tol = 0.5;
        cfg.separator.epsilon = 0.2;
        cfg.separator.max_attempts = 1;

        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(cfg.seed);
        let found = sepdc_separator::find_good_separator::<2, 3, _>(&pts, &cfg.separator, &mut rng)
            .expect("precondition: root separator search must accept");
        let nl = pts
            .iter()
            .filter(|p| found.separator.side(p).routes_interior())
            .count();
        assert!(
            nl == 0 || nl == pts.len(),
            "precondition lost: routing is two-sided (nl = {nl}); re-run the seed search"
        );

        let out = parallel_knn::<2, 3>(&pts, &cfg);
        assert!(
            out.stats.degenerate_splits >= 1,
            "degenerate split not taken: {:?}",
            out.stats
        );
        out.knn
            .same_distances(&brute_force_knn(&pts, 1), 1e-12)
            .unwrap();
        out.knn.check_invariants().unwrap();
    }

    #[test]
    fn halving_backend_rescues_pinned_degenerate_case() {
        // The exact setup of `degenerate_one_sided_separator_forces_leaf`
        // (seed=5028, tol=0.5): under the default backend the root's
        // accepted separator routes one-sided and the recursion forces a
        // brute leaf. The `halving` backend's rescue must instead re-split
        // with the deterministic halving cut, leaving no degenerate leaves
        // at all — and the answers must still match the oracle.
        let pts = Workload::UniformCube.generate::<2>(64, 0);
        let mut cfg = KnnDcConfig::new(1)
            .with_seed(5028)
            .with_splitter(crate::splitter::SplitterKind::Halving);
        cfg.base_case = Some(16);
        cfg.separator.tol = 0.5;
        cfg.separator.epsilon = 0.2;
        cfg.separator.max_attempts = 1;

        let out = parallel_knn::<2, 3>(&pts, &cfg);
        assert!(
            out.stats.halving_rescues >= 1,
            "rescue never fired: {:?}",
            out.stats
        );
        assert_eq!(
            out.stats.degenerate_splits, 0,
            "rescue should eliminate the degenerate leaf: {:?}",
            out.stats
        );
        out.knn
            .same_distances(&brute_force_knn(&pts, 1), 1e-12)
            .unwrap();
        out.knn.check_invariants().unwrap();
        // The report carries the rescue counter.
        assert_eq!(
            out.report.counter("stats.halving_rescues"),
            Some(out.stats.halving_rescues as f64)
        );
    }

    #[test]
    fn alternative_backends_match_oracle_on_degenerate_workloads() {
        use crate::splitter::SplitterKind;
        use rand::SeedableRng;
        use sepdc_workloads::degenerate::{duplicate_bundles, tolerance_band_cluster};

        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        let workloads: Vec<(&str, Vec<sepdc_geom::Point<2>>)> = vec![
            (
                "duplicate_bundles",
                duplicate_bundles::<2, _>(600, 8, &mut rng),
            ),
            (
                "tolerance_band_cluster",
                tolerance_band_cluster::<2, _>(600, 1e-6, &mut rng),
            ),
            ("noisy_line", Workload::NoisyLine.generate::<2>(600, 5)),
        ];
        for (name, pts) in &workloads {
            let oracle = brute_force_knn(pts, 2);
            for kind in [SplitterKind::Halving, SplitterKind::Graph] {
                let cfg = KnnDcConfig::new(2).with_seed(11).with_splitter(kind);
                let out = parallel_knn::<2, 3>(pts, &cfg);
                out.knn
                    .same_distances(&oracle, 1e-9)
                    .unwrap_or_else(|e| panic!("{name} under {:?}: {e}", kind));
                out.knn.check_invariants().unwrap();
            }
        }
        // all_coincident: no backend can split, but all must stay correct.
        let same = sepdc_workloads::degenerate::all_coincident::<2>(200, 2.5);
        let oracle = brute_force_knn(&same, 2);
        for kind in [SplitterKind::Halving, SplitterKind::Graph] {
            let cfg = KnnDcConfig::new(2).with_splitter(kind);
            let out = parallel_knn::<2, 3>(&same, &cfg);
            out.knn.same_distances(&oracle, 0.0).unwrap();
            assert!(out.stats.forced_leaves >= 1);
        }
    }

    #[test]
    fn try_variant_rejects_invalid_inputs() {
        use crate::SepdcError;
        let mut pts = Workload::UniformCube.generate::<2>(100, 20);
        let cfg = KnnDcConfig::new(2);
        assert!(try_parallel_knn::<2, 3>(&pts, &cfg).is_ok());
        assert_eq!(
            try_parallel_knn::<2, 3>(&pts, &KnnDcConfig::new(0))
                .err()
                .map(|e| e.to_string()),
            Some(SepdcError::InvalidK { k: 0 }.to_string())
        );
        pts[41].0[1] = f64::NAN;
        match try_parallel_knn::<2, 3>(&pts, &cfg) {
            Err(SepdcError::NonFinitePoint { idx: 41 }) => {}
            other => panic!(
                "expected NonFinitePoint {{ idx: 41 }}, got {:?}",
                other.err()
            ),
        }
        let bad_cfg = KnnDcConfig {
            eta: f64::NAN,
            ..cfg
        };
        let clean = Workload::UniformCube.generate::<2>(50, 21);
        assert!(matches!(
            try_parallel_knn::<2, 3>(&clean, &bad_cfg),
            Err(SepdcError::InvalidConfig { param: "eta", .. })
        ));
    }

    #[test]
    #[should_panic(expected = "parallel_knn: point 3 has a non-finite")]
    fn infallible_wrapper_panics_with_typed_message() {
        let mut pts = Workload::UniformCube.generate::<2>(10, 22);
        pts[3].0[0] = f64::INFINITY;
        let _ = parallel_knn::<2, 3>(&pts, &KnnDcConfig::new(1));
    }

    #[test]
    fn explicit_max_depth_is_strict() {
        use crate::SepdcError;
        let pts = Workload::UniformCube.generate::<2>(900, 23);
        let cfg = KnnDcConfig {
            max_depth: Some(1),
            ..KnnDcConfig::new(1)
        };
        match try_parallel_knn::<2, 3>(&pts, &cfg) {
            Err(SepdcError::RecursionDepthExceeded { limit: 1 }) => {}
            other => panic!("expected RecursionDepthExceeded, got {:?}", other.err()),
        }
        // A generous explicit limit succeeds and still matches the oracle.
        let cfg_ok = KnnDcConfig {
            max_depth: Some(64),
            ..KnnDcConfig::new(1)
        };
        let out = try_parallel_knn::<2, 3>(&pts, &cfg_ok).unwrap();
        out.knn
            .same_distances(&brute_force_knn(&pts, 1), 1e-9)
            .unwrap();
        assert_eq!(out.stats.depth_forced_leaves, 0);
    }

    #[test]
    fn run_report_is_populated_and_consistent() {
        let pts = Workload::UniformCube.generate::<2>(3000, 30);
        let cfg = KnnDcConfig::new(2);
        let out = parallel_knn::<2, 3>(&pts, &cfg);
        let r = &out.report;
        assert_eq!(r.version, crate::report::RUN_REPORT_VERSION);
        assert_eq!(r.algo, "parallel");
        assert_eq!((r.dim, r.n, r.k), (2, 3000, 2));
        assert!(r.wall_ms > 0.0);
        assert!(r.threads >= 1);
        // Counters mirror the structural stats, the meter, and the cost
        // profile under their prefixes.
        assert_eq!(
            r.counter("stats.fast_corrections"),
            Some(out.stats.fast_corrections as f64)
        );
        assert_eq!(
            r.counter("meter.distance_evals"),
            Some(out.meter.distance_evals as f64)
        );
        assert_eq!(r.counter("cost.depth"), Some(out.cost.depth as f64));
        // Phase timings: one leaf-solve interval per base-case leaf, and
        // every internal node timed a split.
        assert_eq!(
            r.phase("leaf-solve").unwrap().calls as usize,
            out.stats.base_leaves
        );
        assert!(r.phase("split").unwrap().calls > 0);
        // Depth histogram: exactly one root, and the per-depth sums agree
        // with the whole-run stats.
        assert_eq!(r.depth[0].nodes, 1);
        let sum = |f: fn(&crate::report::DepthRow) -> u64| -> u64 { r.depth.iter().map(f).sum() };
        assert_eq!(sum(|d| d.leaves) as usize, out.stats.base_leaves);
        assert_eq!(
            sum(|d| d.punts),
            out.stats.punts_threshold + out.stats.punts_marching
        );
        assert_eq!(sum(|d| d.fast_corrections), out.stats.fast_corrections);
        assert_eq!(sum(|d| d.crossing), out.stats.total_crossing);
        assert_eq!(sum(|d| d.candidates), out.stats.candidates);
        // Config echo carries the resolved tunables.
        assert!(r.config.iter().any(|(name, v)| name == "k" && *v == 2.0));
        // The artifact round-trips through its own serializer.
        let back = crate::report::RunReport::from_json(&r.to_json()).unwrap();
        assert_eq!(&back, r);
    }

    #[test]
    fn record_disabled_skips_phases_and_histograms() {
        let pts = Workload::UniformCube.generate::<2>(600, 31);
        let cfg = KnnDcConfig {
            record: false,
            ..KnnDcConfig::new(1)
        };
        let out = parallel_knn::<2, 3>(&pts, &cfg);
        assert!(out.report.phases.is_empty());
        assert!(out.report.depth.is_empty());
        // The always-computed counters and wall time are still reported.
        assert!(out.report.wall_ms > 0.0);
        assert!(out.report.counter("stats.base_leaves").unwrap() > 0.0);
        // And the result itself is unaffected.
        out.knn
            .same_distances(&brute_force_knn(&pts, 1), 1e-9)
            .unwrap();
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // The result must be a pure function of (points, config): the
        // chunked parallel scans concatenate in order and the shared-store
        // merges are order-independent, so any thread count — including a
        // strictly sequential pool — must produce bit-identical output.
        let pts = Workload::Clusters.generate::<2>(3000, 17);
        let cfg = KnnDcConfig::new(3).with_seed(99);
        let baseline = parallel_knn::<2, 3>(&pts, &cfg);
        for threads in [1, 2, 7] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let out = pool.install(|| parallel_knn::<2, 3>(&pts, &cfg));
            out.knn
                .same_distances(&baseline.knn, 0.0)
                .unwrap_or_else(|e| panic!("{threads} threads: {e}"));
            assert_eq!(out.stats, baseline.stats, "{threads} threads");
            assert_eq!(
                out.tree.nodes().len(),
                baseline.tree.nodes().len(),
                "{threads} threads"
            );
        }
    }
}
