//! Hyperplanes in `R^D`, used both as degenerate separators (great circles
//! through the stereographic north pole map back to hyperplanes) and as the
//! Bentley-style cutting primitive the paper compares against.

use crate::point::Point;
use crate::shape::Side;

/// An oriented hyperplane `{ x : normal . x = offset }` with unit `normal`.
///
/// The "interior" side is `normal . x < offset`; this orientation convention
/// makes [`Hyperplane`] a drop-in generalized sphere (interior ↔ sphere
/// interior).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hyperplane<const D: usize> {
    /// Unit normal.
    pub normal: Point<D>,
    /// Offset along the normal.
    pub offset: f64,
}

impl<const D: usize> Hyperplane<D> {
    /// Construct from a (not necessarily unit) normal and a point on the
    /// plane. Returns `None` for a near-zero normal.
    pub fn through_point(normal: Point<D>, point: &Point<D>, tol: f64) -> Option<Self> {
        let n = normal.normalized(tol)?;
        Some(Hyperplane {
            normal: n,
            offset: n.dot(point),
        })
    }

    /// Axis-aligned hyperplane `x[axis] = value` with interior `x[axis] < value`.
    pub fn axis_aligned(axis: usize, value: f64) -> Self {
        Hyperplane {
            normal: Point::basis(axis),
            offset: value,
        }
    }

    /// Signed distance: negative on the interior side, positive exterior.
    pub fn signed_distance(&self, p: &Point<D>) -> f64 {
        self.normal.dot(p) - self.offset
    }

    /// Classify a point with tolerance `tol`.
    pub fn side_with_tol(&self, p: &Point<D>, tol: f64) -> Side {
        let s = self.signed_distance(p);
        if s < -tol {
            Side::Interior
        } else if s > tol {
            Side::Exterior
        } else {
            Side::Surface
        }
    }

    /// Classify with the crate default tolerance.
    pub fn side(&self, p: &Point<D>) -> Side {
        self.side_with_tol(p, crate::EPS)
    }

    /// `true` when the closed ball `B(p, r)` meets the plane.
    pub fn intersects_ball(&self, p: &Point<D>, r: f64) -> bool {
        self.signed_distance(p).abs() <= r
    }

    /// `true` when the closed ball meets the closed interior halfspace.
    pub fn ball_touches_interior(&self, p: &Point<D>, r: f64) -> bool {
        self.signed_distance(p) - r <= 0.0
    }

    /// `true` when the closed ball meets the closed exterior halfspace.
    pub fn ball_touches_exterior(&self, p: &Point<D>, r: f64) -> bool {
        self.signed_distance(p) + r >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_aligned_classification() {
        let h = Hyperplane::<2>::axis_aligned(0, 1.0);
        assert_eq!(h.side(&Point::from([0.0, 5.0])), Side::Interior);
        assert_eq!(h.side(&Point::from([2.0, -5.0])), Side::Exterior);
        assert_eq!(h.side(&Point::from([1.0, 0.0])), Side::Surface);
    }

    #[test]
    fn through_point_normalizes() {
        let h =
            Hyperplane::<3>::through_point(Point::from([0.0, 0.0, 2.0]), &Point::splat(1.0), 1e-12)
                .unwrap();
        assert!((h.normal.norm() - 1.0).abs() < 1e-12);
        assert!(h.signed_distance(&Point::splat(1.0)).abs() < 1e-12);
    }

    #[test]
    fn through_point_rejects_zero_normal() {
        assert!(
            Hyperplane::<3>::through_point(Point::origin(), &Point::splat(1.0), 1e-12).is_none()
        );
    }

    #[test]
    fn ball_predicates() {
        let h = Hyperplane::<2>::axis_aligned(1, 0.0);
        // Ball strictly interior.
        assert!(h.ball_touches_interior(&Point::from([0.0, -3.0]), 1.0));
        assert!(!h.ball_touches_exterior(&Point::from([0.0, -3.0]), 1.0));
        assert!(!h.intersects_ball(&Point::from([0.0, -3.0]), 1.0));
        // Crossing ball reaches both sides.
        assert!(h.intersects_ball(&Point::from([0.0, 0.5]), 1.0));
        assert!(h.ball_touches_interior(&Point::from([0.0, 0.5]), 1.0));
        assert!(h.ball_touches_exterior(&Point::from([0.0, 0.5]), 1.0));
        // Tangent ball (closed predicate).
        assert!(h.intersects_ball(&Point::from([0.0, 1.0]), 1.0));
    }

    #[test]
    fn signed_distance_linear_in_normal_direction() {
        let h = Hyperplane::<3>::axis_aligned(2, 2.0);
        for t in [-1.0, 0.0, 2.0, 5.5] {
            let p = Point::from([7.0, -3.0, t]);
            assert!((h.signed_distance(&p) - (t - 2.0)).abs() < 1e-12);
        }
    }
}
