//! Closed balls, the elements of neighborhood systems (Section 2 of the
//! paper).

use crate::point::Point;
use crate::shape::Separator;

/// A closed ball `{ x : |x - center| <= radius }`.
///
/// Radius zero is permitted: the `k`-neighborhood ball of a point that
/// coincides with `k` duplicates degenerates to a point, and the marching
/// predicates remain well defined.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ball<const D: usize> {
    /// Center.
    pub center: Point<D>,
    /// Non-negative radius.
    pub radius: f64,
}

impl<const D: usize> Ball<D> {
    /// Construct a ball.
    ///
    /// # Panics
    /// Panics on non-finite or negative radius.
    pub fn new(center: Point<D>, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "ball radius must be finite and non-negative, got {radius}"
        );
        Ball { center, radius }
    }

    /// `true` when `p` lies in the closed ball.
    pub fn contains(&self, p: &Point<D>) -> bool {
        self.center.dist_sq(p) <= self.radius * self.radius
    }

    /// `true` when `p` lies in the open interior.
    ///
    /// The paper's `k`-neighborhood ball is "the largest ball whose
    /// *interior* contains at most `k - 1` points", so the open predicate is
    /// the one used when counting.
    pub fn contains_interior(&self, p: &Point<D>) -> bool {
        self.center.dist_sq(p) < self.radius * self.radius
    }

    /// `true` when this ball and `other` intersect (closed).
    pub fn intersects(&self, other: &Ball<D>) -> bool {
        let d = self.center.dist(&other.center);
        d <= self.radius + other.radius
    }

    /// `true` when this ball crosses the separator surface.
    pub fn crosses(&self, sep: &Separator<D>) -> bool {
        sep.intersects_ball(&self.center, self.radius)
    }

    /// Marching predicate: ball meets the separator or its interior.
    pub fn touches_interior_of(&self, sep: &Separator<D>) -> bool {
        sep.ball_touches_interior(&self.center, self.radius)
    }

    /// Marching predicate: ball meets the separator or its exterior.
    pub fn touches_exterior_of(&self, sep: &Separator<D>) -> bool {
        sep.ball_touches_exterior(&self.center, self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sphere::Sphere;

    #[test]
    fn contains_open_vs_closed() {
        let b = Ball::new(Point::<2>::origin(), 1.0);
        let on = Point::from([1.0, 0.0]);
        assert!(b.contains(&on));
        assert!(!b.contains_interior(&on));
        assert!(b.contains_interior(&Point::from([0.5, 0.0])));
        assert!(!b.contains(&Point::from([1.5, 0.0])));
    }

    #[test]
    fn zero_radius_ball_contains_only_center() {
        let b = Ball::new(Point::<3>::splat(2.0), 0.0);
        assert!(b.contains(&Point::splat(2.0)));
        assert!(!b.contains_interior(&Point::splat(2.0)));
        assert!(!b.contains(&Point::from([2.0, 2.0, 2.1])));
    }

    #[test]
    fn ball_ball_intersection() {
        let a = Ball::new(Point::<2>::origin(), 1.0);
        let b = Ball::new(Point::from([1.5, 0.0]), 1.0);
        let c = Ball::new(Point::from([3.0, 0.0]), 0.5);
        assert!(a.intersects(&b));
        assert!(b.intersects(&c));
        assert!(!a.intersects(&c));
        // Tangency counts (closed balls).
        let t = Ball::new(Point::from([2.0, 0.0]), 1.0);
        assert!(a.intersects(&t));
    }

    #[test]
    fn crossing_and_marching_agree_with_sphere() {
        let sep: Separator<2> = Sphere::new(Point::origin(), 2.0).into();
        let straddle = Ball::new(Point::from([2.0, 0.0]), 0.5);
        assert!(straddle.crosses(&sep));
        assert!(straddle.touches_interior_of(&sep));
        assert!(straddle.touches_exterior_of(&sep));

        let inside = Ball::new(Point::origin(), 0.5);
        assert!(!inside.crosses(&sep));
        assert!(inside.touches_interior_of(&sep));
        assert!(!inside.touches_exterior_of(&sep));

        let outside = Ball::new(Point::from([5.0, 0.0]), 0.5);
        assert!(!outside.crosses(&sep));
        assert!(!outside.touches_interior_of(&sep));
        assert!(outside.touches_exterior_of(&sep));
    }

    #[test]
    fn every_ball_reaches_at_least_one_side() {
        let sep: Separator<2> = Sphere::new(Point::from([0.3, -0.7]), 1.3).into();
        for (c, r) in [
            (Point::from([0.0, 0.0]), 0.1),
            (Point::from([4.0, 4.0]), 2.0),
            (Point::from([0.3, -0.7]), 1.3),
            (Point::from([0.3, 0.6]), 0.0),
        ] {
            let b = Ball::new(c, r);
            assert!(
                b.touches_interior_of(&sep) || b.touches_exterior_of(&sep),
                "ball at {c:?} r={r} reaches no side"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn new_rejects_negative_radius() {
        Ball::new(Point::<2>::origin(), -1.0);
    }
}
