//! EXP-5 — parallel depth scaling (Theorem 6.1 vs Lemma 5.1).
//!
//! Paper claims: the Section 6 algorithm runs in `O(log n)` rounds, the
//! Section 5 algorithm in `O(log² n)`. We measure the critical-path depth
//! of both (in unit-time vector-operation rounds, the quantity the theorems
//! bound) across a geometric `n` sweep and print each normalized by
//! `log₂ n` and `log₂² n` — the matching column should flatten.

use crate::harness::Table;
use sepdc_core::{parallel_knn, simple_parallel_knn, KnnDcConfig};
use sepdc_workloads::Workload;

/// Run EXP-5.
pub fn run() {
    let mut table = Table::new(
        "EXP-5 — critical-path depth: §6 O(log n) vs §5 O(log² n) (uniform, d=2, k=1)",
        &[
            "n",
            "§6 depth",
            "§6 d/log n",
            "§6 d/log² n",
            "§5 depth",
            "§5 d/log n",
            "§5 d/log² n",
        ],
    );
    let cfg = KnnDcConfig::new(1).with_seed(21);
    for e in [10usize, 12, 14, 16, 18] {
        let n = 1usize << e;
        let pts = Workload::UniformCube.generate::<2>(n, e as u64);
        let par = parallel_knn::<2, 3>(&pts, &cfg);
        let simple = simple_parallel_knn::<2, 3>(&pts, &cfg);
        let l = e as f64;
        table.row(
            format!("2^{e}"),
            vec![
                format!("{}", par.cost.depth),
                format!("{:.2}", par.cost.depth as f64 / l),
                format!("{:.2}", par.cost.depth as f64 / (l * l)),
                format!("{}", simple.cost.depth),
                format!("{:.2}", simple.cost.depth as f64 / l),
                format!("{:.2}", simple.cost.depth as f64 / (l * l)),
            ],
        );
    }
    table.note("§6 d/log n flattens (O(log n), Theorem 6.1); its d/log² n decays.");
    table.note("§5 d/log² n flattens (O(log² n), Lemma 5.1); its d/log n grows.");
    table.note("depth counts unit rounds: separator candidates, scans, O(1)-round fast");
    table.note("corrections, O(log m)-round punts, and the all-pairs base case.");
    table.print();
}
