//! Separator explorer: draw unit-time sphere-separator candidates on
//! different point distributions and report split ratios, intersection
//! numbers against the k-neighborhood system, and the retry behaviour of
//! the search loop — the machinery of Sections 2–3 made visible.
//!
//! ```sh
//! cargo run --release --example separator_explorer
//! ```

use rand::SeedableRng;
use sepdc::core::{brute_force_knn, NeighborhoodSystem};
use sepdc::separator::mttv::unit_time_candidate;
use sepdc::separator::{find_good_separator, split_counts, SeparatorConfig};
use sepdc::workloads::Workload;

fn main() {
    let n = 4_000;
    let k = 2;
    let cfg = SeparatorConfig::default();
    println!(
        "unit-time sphere separators on {n} points, k = {k}, δ = {:.3}\n",
        cfg.delta(2)
    );
    println!(
        "{:<14} {:>8} {:>8} {:>10} {:>12} {:>10}",
        "workload", "ratio", "good%", "attempts", "crossing", "√n·c"
    );

    for w in Workload::ALL {
        let points = w.generate::<2>(n, 1234);
        let knn = brute_force_knn(&points, k);
        let system = NeighborhoodSystem::from_knn(&points, &knn);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);

        // Draw 50 raw candidates: how often are they good?
        let trials = 50;
        let mut good = 0;
        let mut ratio_sum = 0.0;
        for _ in 0..trials {
            if let Some(sep) = unit_time_candidate::<2, 3, _>(&points, &cfg, &mut rng) {
                let c = split_counts(&points, &sep, cfg.tol);
                ratio_sum += c.ratio();
                if c.ratio() <= cfg.delta(2) {
                    good += 1;
                }
            }
        }

        // The retry search: attempts until success, and the intersection
        // number of the accepted separator against the k-neighborhood
        // system (Theorem 2.1 / Lemma 6.4 quantity).
        let found =
            find_good_separator::<2, 3, _>(&points, &cfg, &mut rng).expect("splittable input");
        let crossing = system.intersection_number(&found.separator);

        println!(
            "{:<14} {:>8.3} {:>7}% {:>10} {:>12} {:>10.0}",
            w.name(),
            ratio_sum / trials as f64,
            good * 100 / trials,
            found.attempts,
            crossing,
            (n as f64).sqrt() * 3.0
        );
    }

    println!(
        "\nratio   = mean achieved split ratio over 50 raw candidates\n\
         good%   = fraction of candidates that δ-split the points\n\
         crossing= ι_B(S) of the accepted separator vs the k-neighborhood\n\
         \u{221a}n·c    = the O(n^((d-1)/d)) = O(\u{221a}n) scale the theorem predicts (d = 2)"
    );
}
