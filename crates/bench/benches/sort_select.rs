//! Criterion bench: the CRCW-PRAM substrate primitives — scan-based radix
//! sort, split sort, and randomized selection (quickselect vs
//! Floyd–Rivest).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sepdc_scan::selection::{k_smallest_bucketed, select_rank, select_rank_fr};
use sepdc_scan::sort::{radix_sort_pairs, split_sort_u64};
use std::hint::black_box;

fn keys(n: usize) -> Vec<u64> {
    let mut s = 0x12345u64;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s % 1_000_000
        })
        .collect()
}

fn bench_sorts(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort");
    group.sample_size(10);
    for e in [16u32, 18] {
        let n = 1usize << e;
        let ks = keys(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("radix", n), &ks, |b, ks| {
            b.iter(|| {
                let mut pairs: Vec<(u64, u32)> =
                    ks.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
                radix_sort_pairs(&mut pairs);
                black_box(pairs)
            });
        });
        group.bench_with_input(BenchmarkId::new("split_sort", n), &ks, |b, ks| {
            b.iter(|| black_box(split_sort_u64(ks)));
        });
        group.bench_with_input(BenchmarkId::new("std_unstable", n), &ks, |b, ks| {
            b.iter(|| {
                let mut v = ks.clone();
                v.sort_unstable();
                black_box(v)
            });
        });
    }
    group.finish();
}

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    group.sample_size(20);
    let n = 1usize << 20;
    let xs: Vec<f64> = keys(n).iter().map(|&k| k as f64).collect();
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("quickselect_median_1M", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        b.iter(|| black_box(select_rank(&xs, n / 2, &mut rng)));
    });
    group.bench_function("floyd_rivest_median_1M", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        b.iter(|| black_box(select_rank_fr(&xs, n / 2, &mut rng)));
    });
    group.bench_function("bucketed_k64_1M", |b| {
        b.iter(|| black_box(k_smallest_bucketed(&xs, 64, 128)));
    });
    group.finish();
}

criterion_group!(benches, bench_sorts, bench_selection);
criterion_main!(benches);
