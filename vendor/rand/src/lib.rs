//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *exact* API surface it uses: [`RngCore`], [`SeedableRng`]
//! (with the SplitMix64 `seed_from_u64` expansion), the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`), and [`seq::SliceRandom`]
//! (Fisher–Yates `shuffle`, `choose`). Algorithms match the upstream
//! definitions where determinism matters (range sampling via widening
//! multiply rejection for integers, half-open scaling for floats), though
//! streams are not bit-compatible with upstream `rand` — the workspace
//! only relies on determinism for a *fixed* toolchain, not on matching
//! upstream values.

use std::ops::{Range, RangeInclusive};

/// Core random number generator interface (subset of `rand_core`).
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed or a `u64`.
pub trait SeedableRng: Sized {
    /// Seed type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it with SplitMix64 (same
    /// construction as upstream `rand`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Steele, Lea, Flood 2014).
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for f32 {}
    impl Sealed for bool {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for usize {}
    impl Sealed for i32 {}
    impl Sealed for i64 {}
}

/// Types producible uniformly by [`Rng::gen`] (stand-in for the upstream
/// `Standard` distribution).
pub trait Standard: sealed::Sealed + Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits scaled into [0, 1) — upstream's construction.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl Standard for i64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

/// A range samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by widening-multiply with rejection
/// (unbiased; Lemire 2018).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
        // Rejected: retry with fresh bits.
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every value is fair.
                    return <$t as Standard>::draw(rng);
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
int_range_impls!(usize, u32, u64, i32, i64);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::draw(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_range_impls!(f64, f32);

/// Convenience extension trait (subset of upstream `Rng`).
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related extensions (subset of `rand::seq`).

    use super::{Rng, RngCore};

    /// Extension methods on slices (subset of upstream `SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Lcg(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&y));
            let z = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn unit_floats_cover_interval() {
        let mut r = Lcg(3);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..100).collect();
        let mut r = Lcg(11);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 100 elements in order");
    }
}
