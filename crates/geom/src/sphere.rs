//! `(D-1)`-spheres in `R^D` and the circumsphere solver.

use crate::matrix::DMatrix;
use crate::point::Point;
use crate::shape::Side;

/// A `(D-1)`-sphere: the set `{ x : |x - center| = radius }`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sphere<const D: usize> {
    /// Center of the sphere.
    pub center: Point<D>,
    /// Radius (strictly positive for a valid separator).
    pub radius: f64,
}

impl<const D: usize> Sphere<D> {
    /// Construct a sphere.
    ///
    /// # Panics
    /// Panics on non-finite or non-positive radius.
    pub fn new(center: Point<D>, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius > 0.0,
            "sphere radius must be finite and positive, got {radius}"
        );
        assert!(center.is_finite(), "sphere center must be finite");
        Sphere { center, radius }
    }

    /// Signed distance of `p` to the sphere surface: negative inside,
    /// zero on the surface, positive outside.
    pub fn signed_distance(&self, p: &Point<D>) -> f64 {
        self.center.dist(p) - self.radius
    }

    /// Classify a point against the sphere with tolerance `tol`.
    pub fn side_with_tol(&self, p: &Point<D>, tol: f64) -> Side {
        let s = self.signed_distance(p);
        if s < -tol {
            Side::Interior
        } else if s > tol {
            Side::Exterior
        } else {
            Side::Surface
        }
    }

    /// Classify a point using the crate default tolerance.
    pub fn side(&self, p: &Point<D>) -> Side {
        self.side_with_tol(p, crate::EPS)
    }

    /// `true` when the closed ball `B(p, r)` meets the sphere surface,
    /// i.e. `radius - r <= |p - center| <= radius + r`.
    pub fn intersects_ball(&self, p: &Point<D>, r: f64) -> bool {
        let d = self.center.dist(p);
        d >= self.radius - r && d <= self.radius + r
    }

    /// `true` when the closed ball `B(p, r)` meets the *closed interior*
    /// of the sphere (surface included). This is the "goes left" predicate
    /// of the marching step (Section 6.2): a ball reaches the left child
    /// when it intersects the separator or its interior.
    pub fn ball_touches_interior(&self, p: &Point<D>, r: f64) -> bool {
        self.center.dist(p) - r <= self.radius
    }

    /// `true` when the closed ball `B(p, r)` meets the *closed exterior*
    /// (surface included) — the "goes right" predicate.
    pub fn ball_touches_exterior(&self, p: &Point<D>, r: f64) -> bool {
        self.center.dist(p) + r >= self.radius
    }

    /// Circumsphere through `D + 1` points, or `None` when the points are
    /// affinely degenerate (to within `tol`) or the resulting sphere is not
    /// representable (non-finite / non-positive radius).
    ///
    /// The classical linearization: `|x - c|^2 = R^2` for each point `x_i`
    /// subtracts pairwise to the linear system
    /// `2 (x_i - x_0) . c = |x_i|^2 - |x_0|^2`.
    pub fn circumsphere(points: &[Point<D>], tol: f64) -> Option<Self> {
        assert_eq!(
            points.len(),
            D + 1,
            "circumsphere needs exactly D + 1 = {} points, got {}",
            D + 1,
            points.len()
        );
        let x0 = points[0];
        let m = DMatrix::from_fn(D, D, |r, c| 2.0 * (points[r + 1][c] - x0[c]));
        let b: Vec<f64> = (0..D)
            .map(|r| points[r + 1].norm_sq() - x0.norm_sq())
            .collect();
        let sol = m.solve(&b, tol)?;
        let mut center = Point::<D>::origin();
        for i in 0..D {
            center[i] = sol[i];
        }
        if !center.is_finite() {
            return None;
        }
        let radius = center.dist(&x0);
        if !radius.is_finite() || radius <= 0.0 {
            return None;
        }
        Some(Sphere { center, radius })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_distance_signs() {
        let s = Sphere::new(Point::<2>::origin(), 1.0);
        assert!(s.signed_distance(&Point::from([0.5, 0.0])) < 0.0);
        assert!(s.signed_distance(&Point::from([2.0, 0.0])) > 0.0);
        assert!(s.signed_distance(&Point::from([0.0, 1.0])).abs() < 1e-15);
    }

    #[test]
    fn side_classification() {
        let s = Sphere::new(Point::<3>::origin(), 2.0);
        assert_eq!(s.side(&Point::from([0.0, 0.0, 0.0])), Side::Interior);
        assert_eq!(s.side(&Point::from([3.0, 0.0, 0.0])), Side::Exterior);
        assert_eq!(s.side(&Point::from([2.0, 0.0, 0.0])), Side::Surface);
    }

    #[test]
    fn ball_intersection_cases() {
        let s = Sphere::new(Point::<2>::origin(), 5.0);
        // Ball deep inside, not reaching the surface.
        assert!(!s.intersects_ball(&Point::from([0.0, 0.0]), 1.0));
        assert!(s.ball_touches_interior(&Point::from([0.0, 0.0]), 1.0));
        assert!(!s.ball_touches_exterior(&Point::from([0.0, 0.0]), 1.0));
        // Ball straddling the surface.
        assert!(s.intersects_ball(&Point::from([5.0, 0.0]), 1.0));
        assert!(s.ball_touches_interior(&Point::from([5.0, 0.0]), 1.0));
        assert!(s.ball_touches_exterior(&Point::from([5.0, 0.0]), 1.0));
        // Ball fully outside.
        assert!(!s.intersects_ball(&Point::from([10.0, 0.0]), 1.0));
        assert!(!s.ball_touches_interior(&Point::from([10.0, 0.0]), 1.0));
        assert!(s.ball_touches_exterior(&Point::from([10.0, 0.0]), 1.0));
        // Tangent from inside (boundary case, closed predicates).
        assert!(s.intersects_ball(&Point::from([4.0, 0.0]), 1.0));
    }

    #[test]
    fn reachability_covers_both_children_when_crossing() {
        // Any ball must reach at least one side; a crossing ball reaches both.
        let s = Sphere::new(Point::<2>::origin(), 1.0);
        let crossing = (Point::from([1.0, 0.0]), 0.5);
        assert!(s.ball_touches_interior(&crossing.0, crossing.1));
        assert!(s.ball_touches_exterior(&crossing.0, crossing.1));
    }

    #[test]
    fn circumsphere_unit_circle() {
        let pts = [
            Point::<2>::from([1.0, 0.0]),
            Point::from([0.0, 1.0]),
            Point::from([-1.0, 0.0]),
        ];
        let s = Sphere::circumsphere(&pts, 1e-12).unwrap();
        assert!(s.center.norm() < 1e-12);
        assert!((s.radius - 1.0).abs() < 1e-12);
    }

    #[test]
    fn circumsphere_3d_shifted() {
        let c = Point::<3>::from([1.0, -2.0, 0.5]);
        let r = 3.0;
        let pts = [
            c + Point::from([r, 0.0, 0.0]),
            c + Point::from([0.0, r, 0.0]),
            c + Point::from([0.0, 0.0, r]),
            c + Point::from([-r, 0.0, 0.0]),
        ];
        let s = Sphere::circumsphere(&pts, 1e-12).unwrap();
        assert!(s.center.dist(&c) < 1e-9);
        assert!((s.radius - r).abs() < 1e-9);
        for p in &pts {
            assert!(s.signed_distance(p).abs() < 1e-9);
        }
    }

    #[test]
    fn circumsphere_degenerate_collinear() {
        let pts = [
            Point::<2>::from([0.0, 0.0]),
            Point::from([1.0, 0.0]),
            Point::from([2.0, 0.0]),
        ];
        assert!(Sphere::circumsphere(&pts, 1e-9).is_none());
    }

    #[test]
    #[should_panic(expected = "radius must be finite and positive")]
    fn new_rejects_zero_radius() {
        Sphere::new(Point::<2>::origin(), 0.0);
    }
}
