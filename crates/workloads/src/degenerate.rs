//! Degenerate and adversarial-robustness inputs.
//!
//! These generators produce the inputs a *total* API must survive rather
//! than the inputs the complexity analysis is about: NaN-poisoned clouds,
//! all-coincident multisets, near-coincident clusters sitting inside the
//! separator tolerance band. They are deliberately **not** part of
//! [`crate::Workload::ALL`] — the experiment sweeps assume finite,
//! non-degenerate data — and are consumed by the totality/fuzz test
//! suites instead.

use crate::distributions::uniform_cube;
use rand::Rng;
use sepdc_geom::Point;

/// A uniform cloud where roughly `poison_rate` of the points have one
/// coordinate replaced by NaN (always including point 0's replacement
/// candidate pool, so at least one point is poisoned for `n ≥ 1`).
///
/// Feeding this to any `try_*` entry point must yield
/// `SepdcError::NonFinitePoint` — never a panic or a hang.
pub fn nan_poisoned<const D: usize, R: Rng>(
    n: usize,
    poison_rate: f64,
    rng: &mut R,
) -> Vec<Point<D>> {
    let mut pts = uniform_cube::<D, R>(n, rng);
    let mut poisoned = false;
    for p in pts.iter_mut() {
        if rng.gen_range(0.0..1.0) < poison_rate {
            let axis = rng.gen_range(0..D);
            p.0[axis] = f64::NAN;
            poisoned = true;
        }
    }
    if !poisoned {
        if let Some(p) = pts.first_mut() {
            p.0[0] = f64::NAN;
        }
    }
    pts
}

/// A uniform cloud where one random point has one coordinate replaced by
/// `±INFINITY`.
pub fn inf_poisoned<const D: usize, R: Rng>(n: usize, rng: &mut R) -> Vec<Point<D>> {
    let mut pts = uniform_cube::<D, R>(n, rng);
    if let Some(i) = (!pts.is_empty()).then(|| rng.gen_range(0..pts.len())) {
        let axis = rng.gen_range(0..D);
        let sign = if rng.gen_range(0.0..1.0) < 0.5 {
            1.0
        } else {
            -1.0
        };
        pts[i].0[axis] = sign * f64::INFINITY;
    }
    pts
}

/// `n` copies of the same point — no separator can split this multiset, so
/// every algorithm must fall through to its forced-leaf path and report
/// `radius_sq = 0` for `k < n`.
pub fn all_coincident<const D: usize>(n: usize, value: f64) -> Vec<Point<D>> {
    vec![Point::splat(value); n]
}

/// A cloud of tight duplicate bundles: `n` points in `n / bundle` distinct
/// locations, each location repeated `bundle` times exactly. Exercises the
/// duplicate-handling of the neighbor lists (distance-0 neighbors must be
/// distinct indices) and separator surfaces through coincident points.
pub fn duplicate_bundles<const D: usize, R: Rng>(
    n: usize,
    bundle: usize,
    rng: &mut R,
) -> Vec<Point<D>> {
    let bundle = bundle.max(1);
    let sites = uniform_cube::<D, R>(n.div_ceil(bundle), rng);
    let mut out = Vec::with_capacity(n);
    'fill: for site in sites {
        for _ in 0..bundle {
            if out.len() == n {
                break 'fill;
            }
            out.push(site);
        }
    }
    out
}

/// Points jittered by at most `scale` around a single location: the whole
/// cloud fits inside a typical separator tolerance band, so accepted
/// separators can disagree with strict-side routing. This is the shape
/// behind the degenerate-split forced-leaf fallback.
pub fn tolerance_band_cluster<const D: usize, R: Rng>(
    n: usize,
    scale: f64,
    rng: &mut R,
) -> Vec<Point<D>> {
    (0..n)
        .map(|_| {
            let mut c = [0.0; D];
            for v in &mut c {
                *v = 0.5 + rng.gen_range(-scale..scale.max(f64::MIN_POSITIVE));
            }
            Point(c)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn nan_poisoned_always_has_a_nan() {
        for n in [1usize, 2, 10, 100] {
            let pts = nan_poisoned::<2, _>(n, 0.05, &mut rng(1));
            assert_eq!(pts.len(), n);
            assert!(pts.iter().any(|p| !p.is_finite()), "n={n}");
        }
        assert!(nan_poisoned::<2, _>(0, 0.5, &mut rng(1)).is_empty());
    }

    #[test]
    fn inf_poisoned_has_an_infinity() {
        let pts = inf_poisoned::<3, _>(50, &mut rng(2));
        assert!(pts.iter().any(|p| p.0.iter().any(|c| c.is_infinite())));
    }

    #[test]
    fn all_coincident_is_constant() {
        let pts = all_coincident::<2>(40, 3.0);
        assert_eq!(pts.len(), 40);
        assert!(pts.iter().all(|p| *p == Point::splat(3.0)));
    }

    #[test]
    fn duplicate_bundles_repeat_sites() {
        let pts = duplicate_bundles::<2, _>(100, 4, &mut rng(3));
        assert_eq!(pts.len(), 100);
        let mut sorted: Vec<_> = pts
            .iter()
            .map(|p| (p.0[0].to_bits(), p.0[1].to_bits()))
            .collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 25);
    }

    #[test]
    fn tolerance_band_cluster_is_tight() {
        let pts = tolerance_band_cluster::<2, _>(64, 1e-12, &mut rng(4));
        assert_eq!(pts.len(), 64);
        for p in &pts {
            assert!((p.0[0] - 0.5).abs() <= 1e-12);
            assert!(p.is_finite());
        }
    }
}
