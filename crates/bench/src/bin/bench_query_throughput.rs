//! Batch-query serving throughput bench for the Section 3 structure
//! (the `sepdc_core::serve` engine behind `sepdc query`).
//!
//! ```sh
//! cargo run --release -p sepdc-bench --bin bench_query_throughput          # full
//! cargo run --release -p sepdc-bench --bin bench_query_throughput -- --smoke
//! ```
//!
//! Builds one query tree (UniformCube 2d, n = 100k, k = 4 — the PR-1
//! acceptance workload) and sweeps probe batch sizes 1..64k against
//! thread counts 1/2/4/8, reporting probes/sec per cell. Every
//! multi-thread cell is parity-checked byte-for-byte against the
//! 1-thread answer for the same batch — the serve engine's determinism
//! contract, enforced here on every run. Writes
//! `BENCH_query_throughput.json` (override with `SEPDC_BENCH_OUT`)
//! embedding, under `"reports"`, one full serve [`sepdc_core::RunReport`]
//! per batch size (a separate `record = true` run so instrumentation
//! never taints the timed cells).

use sepdc_bench::harness::{host_info, json_str, timed, HostInfo, Table};
use sepdc_core::serve::{BatchResult, CoverPredicate, ServeConfig};
use sepdc_core::{
    kdtree_all_knn, load_query_tree, save_query_tree, NeighborhoodSystem, QueryTree,
    QueryTreeConfig,
};
use sepdc_workloads::Workload;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// One embedded run report: (row label, median seconds, RunReport JSON).
type CaseReport = (String, f64, String);

fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut secs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let ((), dt) = timed(&mut f);
        secs.push(dt);
    }
    secs.sort_by(f64::total_cmp);
    secs[secs.len() / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (reps, scale) = if smoke { (1, 25) } else { (5, 1) };
    let n = 100_000 / scale;
    let k = 4;
    let batch_sizes: &[usize] = if smoke {
        &[1, 64, 1024, 4096]
    } else {
        &[1, 64, 1024, 16_384, 65_536]
    };

    let pts = Workload::UniformCube.generate::<2>(n, 7);
    let (tree, build_s) = timed(|| {
        let knn = kdtree_all_knn(&pts, k);
        let system = NeighborhoodSystem::from_knn(&pts, &knn);
        QueryTree::build::<3>(system.balls(), QueryTreeConfig::default(), 3)
    });
    // Snapshot round trip: how much faster is loading the frozen index
    // than rebuilding it (the `sepdc index build` / `serve` value prop)?
    let snapshot = save_query_tree(&tree);
    let (loaded, load_s) = timed(|| load_query_tree::<2>(&snapshot).expect("snapshot load"));
    assert_eq!(
        save_query_tree(&loaded),
        snapshot,
        "snapshot round trip must be byte-identical"
    );
    let load_speedup = build_s / load_s.max(1e-12);
    if !smoke {
        // Acceptance: load >= 10x faster than build on the 100k workload.
        assert!(
            load_speedup >= 10.0,
            "snapshot load ({:.1} ms) must be >= 10x faster than build \
             ({:.1} ms); got {load_speedup:.1}x",
            load_s * 1e3,
            build_s * 1e3,
        );
    }
    drop(loaded);

    let probes = Workload::UniformCube.generate::<2>(*batch_sizes.last().unwrap(), 11);
    let cfg = ServeConfig::default();

    let mut headers: Vec<String> = vec!["batch".into()];
    headers.extend(THREADS.iter().map(|t| format!("{t}T probes/s")));
    headers.push("4T/1T".into());
    headers.push("mean cost".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new("BENCH query serving throughput", &header_refs);

    let mut reports: Vec<CaseReport> = Vec::new();
    let mut accept_speedup: Option<f64> = None;
    for &batch in batch_sizes {
        let slice = &probes[..batch];
        let mut rates: Vec<f64> = Vec::new();
        let mut baseline: Option<BatchResult> = None;
        for &t in &THREADS {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(t)
                .build()
                .unwrap();
            let sec = pool.install(|| {
                median_secs(reps, || {
                    let out = tree.try_serve(slice, CoverPredicate::Closed, &cfg).unwrap();
                    std::hint::black_box(&out.result);
                })
            });
            // Determinism: the answer must be byte-identical to 1 thread.
            let res = pool
                .install(|| tree.try_serve(slice, CoverPredicate::Closed, &cfg))
                .unwrap()
                .result;
            match &baseline {
                None => baseline = Some(res),
                Some(b) => {
                    assert_eq!(b.offsets(), res.offsets(), "batch={batch} threads={t}");
                    assert_eq!(b.ids(), res.ids(), "batch={batch} threads={t}");
                }
            }
            rates.push(batch as f64 / sec.max(1e-12));
        }
        // Instrumented run (separate from the timed cells) for the report.
        let rec_cfg = ServeConfig {
            record: true,
            ..ServeConfig::default()
        };
        let (out, rec_s) = timed(|| tree.try_serve(slice, CoverPredicate::Closed, &rec_cfg));
        let out = out.unwrap();
        let speedup = rates[2] / rates[0].max(1e-12);
        if batch == *batch_sizes.last().unwrap() {
            accept_speedup = Some(speedup);
        }
        reports.push((format!("batch={batch}"), rec_s, out.report.to_json()));
        let mut cells: Vec<String> = rates.iter().map(|r| format!("{r:.0}")).collect();
        cells.push(format!("{speedup:.2}x"));
        cells.push(format!("{:.1}", out.stats.mean_cost()));
        table.row(batch.to_string(), cells);
    }

    let host = host_info();
    host.warn_if_single_core();
    table.note(host.describe());
    let cores = host.cores;
    table.note(format!(
        "tree: UniformCube 2d n={n} k={k}, built in {:.1} ms; closed predicate, \
         chunk_size={}, reps={reps}, median reported",
        build_s * 1e3,
        cfg.chunk_size,
    ));
    table.note(format!(
        "snapshot: {} bytes, loaded in {:.1} ms = {load_speedup:.1}x faster \
         than build (round trip byte-identical)",
        snapshot.len(),
        load_s * 1e3,
    ));
    table.note(format!(
        "host has {cores} core(s); thread-count scaling (the 4T/1T column) is \
         only physically observable with >=4 cores — on fewer cores the \
         column measures oversubscription overhead, not speedup"
    ));
    table.note(
        "every multi-thread cell parity-checked byte-for-byte against the \
         1-thread answer (serve determinism contract)"
            .to_string(),
    );
    if let Some(s) = accept_speedup {
        table.note(format!(
            "acceptance cell (largest batch): 4T/1T = {s:.2}x on this host"
        ));
    }
    if smoke {
        table.note("--smoke run: n scaled down 25x, 1 rep (CI sanity only)".to_string());
    }
    table.print();

    let out_path = std::env::var("SEPDC_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_query_throughput.json".to_string());
    let timings = BuildTimings {
        build_ms: build_s * 1e3,
        snapshot_load_ms: load_s * 1e3,
        snapshot_bytes: snapshot.len(),
    };
    std::fs::write(&out_path, bench_json(&table, &reports, &host, &timings))
        .expect("write bench json");
    eprintln!("[wrote {out_path}]");
}

/// Build-vs-load timings surfaced as top-level artifact fields.
struct BuildTimings {
    build_ms: f64,
    snapshot_load_ms: f64,
    snapshot_bytes: usize,
}

/// Same combined shape as `bench_parallel_knn`: the human-oriented table
/// plus one full serve run report per batch size, so schema validators and
/// the `sepdc report` pretty-printer both work off the same file.
fn bench_json(
    table: &Table,
    reports: &[CaseReport],
    host: &HostInfo,
    timings: &BuildTimings,
) -> String {
    let mut s = String::from("{\n\"host\": ");
    s.push_str(&host.to_json());
    s.push_str(&format!(
        ",\n\"build_ms\": {:.3},\n\"snapshot_load_ms\": {:.3},\n\"snapshot_bytes\": {},\n",
        timings.build_ms, timings.snapshot_load_ms, timings.snapshot_bytes
    ));
    s.push_str("\"table\":\n");
    s.push_str(table.to_json().trim_end());
    s.push_str(",\n\"reports\": [\n");
    for (i, (label, secs, report)) in reports.iter().enumerate() {
        s.push_str(&format!(
            "{{ \"label\": {}, \"median_ms\": {:.3}, \"report\":\n{} }}{}\n",
            json_str(label),
            secs * 1e3,
            report.trim_end(),
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    s.push_str("]\n}\n");
    s
}
