//! Regenerate the paper's figure (and companions) as SVG files under
//! `figures/`.
//!
//! The paper contains exactly one figure — *"Figure 1: A sphere
//! separator"* — a neighborhood system split by a sphere, with balls in
//! the interior, exterior, and crossing set. This example reproduces it
//! from a real 1-neighborhood system and an actually-computed MTTV
//! separator, then renders three companion figures: the §6 partition tree,
//! the k-NN graph, and the hyperplane-vs-sphere adversarial comparison.
//!
//! ```sh
//! cargo run --release --example draw_figures
//! ```

use rand::SeedableRng;
use sepdc::core::{parallel_knn, KnnDcConfig, KnnGraph, NeighborhoodSystem};
use sepdc::geom::{Hyperplane, Separator};
use sepdc::separator::{find_good_separator, SeparatorConfig};
use sepdc::workloads::Workload;
use sepdc_viz::scene::{colors, draw_figure1};
use sepdc_viz::Scene;

fn main() -> std::io::Result<()> {
    let out = std::path::Path::new("figures");
    std::fs::create_dir_all(out)?;

    // --- Figure 1: a sphere separator over a 1-neighborhood system. ---
    let pts = Workload::UniformCube.generate::<2>(300, 2024);
    let knn_out = parallel_knn::<2, 3>(&pts, &KnnDcConfig::new(1).with_seed(7));
    let system = NeighborhoodSystem::from_knn(&pts, &knn_out.knn);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    let found = find_good_separator::<2, 3, _>(&pts, &SeparatorConfig::default(), &mut rng)
        .expect("splittable");
    let svg = draw_figure1(system.balls(), &found.separator, 640.0);
    std::fs::write(out.join("figure1_sphere_separator.svg"), svg)?;
    println!(
        "figure1_sphere_separator.svg: ι = {} crossing balls, split ratio {:.3}",
        system.intersection_number(&found.separator),
        found.counts.ratio()
    );

    // --- Partition tree of the §6 recursion. ---
    let pts2 = Workload::Clusters.generate::<2>(1500, 9);
    let out2 = parallel_knn::<2, 3>(&pts2, &KnnDcConfig::new(1).with_seed(4));
    let mut scene = Scene::fit(&pts2, 640.0);
    for p in &pts2 {
        scene.point(p, 1.2, colors::POINT);
    }
    scene.draw_partition_tree(&out2.tree, 5);
    scene.caption("Section 6 partition tree (separators fade with depth)");
    scene.save(out.join("partition_tree.svg"))?;
    println!(
        "partition_tree.svg: height {}, {} leaves",
        out2.tree.height(),
        out2.tree.leaves()
    );

    // --- The k-NN graph (Definition 1.1). ---
    let graph = KnnGraph::from_knn(&out2.knn);
    let mut scene = Scene::fit(&pts2, 640.0);
    scene.draw_graph(&pts2, &graph);
    scene.caption("the 1-nearest-neighbor graph (Definition 1.1)");
    scene.save(out.join("knn_graph.svg"))?;
    println!(
        "knn_graph.svg: {} edges, {} components",
        graph.num_edges(),
        graph.connected_components()
    );

    // --- Hyperplane vs sphere on the adversarial input. ---
    let slabs = Workload::TwoSlabs.generate::<2>(300, 5);
    let sout = parallel_knn::<2, 3>(&slabs, &KnnDcConfig::new(1).with_seed(6));
    let ssys = NeighborhoodSystem::from_knn(&slabs, &sout.knn);
    // The bad cut: between the slabs.
    let gap = 0.1 / 150.0;
    let bad: Separator<2> = Hyperplane::axis_aligned(1, gap / 2.0).into();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
    let good = find_good_separator::<2, 3, _>(&slabs, &SeparatorConfig::default(), &mut rng)
        .expect("splittable");
    let mut scene = Scene::fit(&slabs, 640.0);
    scene.draw_neighborhood_split(ssys.balls(), &good.separator);
    scene.separator(&bad, colors::EXTERIOR, 2.0, 0.9);
    scene.caption("two-slabs: every ball crosses the red median plane; the sphere crosses ~0");
    scene.save(out.join("hyperplane_vs_sphere.svg"))?;
    println!(
        "hyperplane_vs_sphere.svg: hyperplane ι = {}, sphere ι = {}",
        ssys.intersection_number(&bad),
        ssys.intersection_number(&good.separator)
    );

    println!("\nall figures written to figures/");
    Ok(())
}
