//! EXP-4 — all-k-NN algorithm comparison (the headline result's work
//! claim).
//!
//! Paper claims: the Section 6 algorithm uses `n` processors and `O(log n)`
//! time, i.e. `O(n log n)` work — "no more work than the best sequential
//! algorithm" (Vaidya). We compare brute force, the kd-tree baseline, the
//! Section 5 algorithm and the Section 6 algorithm across `n`, `d`, `k`:
//! wall time, analytic work (normalized by `n log n`), and correctness
//! against the oracle on a subsample.

use crate::harness::{timed, Table};
use sepdc_core::{brute_force_knn, kdtree_all_knn, parallel_knn, simple_parallel_knn, KnnDcConfig};
use sepdc_workloads::Workload;

fn bench_size<const D: usize, const E: usize>(table: &mut Table, n: usize, k: usize) {
    let pts = Workload::UniformCube.generate::<D>(n, 11);
    let cfg = KnnDcConfig::new(k).with_seed(3);

    let (kd, t_kd) = timed(|| kdtree_all_knn(&pts, k));
    let (simple, t_sp) = timed(|| simple_parallel_knn::<D, E>(&pts, &cfg));
    let (par, t_par) = timed(|| parallel_knn::<D, E>(&pts, &cfg));

    // Correctness, full oracle up to 20k points, subsample beyond.
    let check_n = n.min(20_000);
    let sub: Vec<_> = pts.iter().copied().take(check_n).collect();
    let oracle = brute_force_knn(&sub, k);
    if check_n == n {
        kd.same_distances(&oracle, 1e-9).expect("kdtree");
        simple.knn.same_distances(&oracle, 1e-9).expect("simple");
        par.knn.same_distances(&oracle, 1e-9).expect("parallel");
    } else {
        parallel_knn::<D, E>(&sub, &cfg)
            .knn
            .same_distances(&oracle, 1e-9)
            .expect("parallel subsample");
    }

    let nlogn = n as f64 * (n as f64).log2();
    table.row(
        format!("d={D} k={k} n={n}"),
        vec![
            format!("{:.0}ms", t_kd * 1e3),
            format!("{:.0}ms", t_sp * 1e3),
            format!("{:.0}ms", t_par * 1e3),
            format!("{:.1}", simple.cost.work as f64 / nlogn),
            format!("{:.1}", par.cost.work as f64 / nlogn),
            format!("{}", simple.cost.depth),
            format!("{}", par.cost.depth),
            format!(
                "{}/{}",
                par.stats.fast_corrections,
                par.stats.punts_threshold + par.stats.punts_marching
            ),
        ],
    );
}

/// Run EXP-4.
pub fn run() {
    let mut table = Table::new(
        "EXP-4 — all-k-NN algorithms (uniform cube): time, work, depth",
        &[
            "config",
            "kd-tree",
            "§5 simple",
            "§6 parallel",
            "§5 work/nlogn",
            "§6 work/nlogn",
            "§5 depth",
            "§6 depth",
            "fast/punt",
        ],
    );
    bench_size::<2, 3>(&mut table, 10_000, 1);
    bench_size::<2, 3>(&mut table, 50_000, 1);
    bench_size::<2, 3>(&mut table, 100_000, 1);
    bench_size::<2, 3>(&mut table, 50_000, 4);
    bench_size::<3, 4>(&mut table, 10_000, 1);
    bench_size::<3, 4>(&mut table, 50_000, 1);
    bench_size::<3, 4>(&mut table, 50_000, 4);
    table.note("work/nlogn flat ⇒ both parallel algorithms are within a constant of the");
    table.note("sequential O(n log n) bound (the paper's 'no more work than Vaidya').");
    table.note("§6 wall time includes the unit-time separator machinery (centerpoints);");
    table.note("its PRAM advantage is the depth column, not multicore wall-clock.");
    table.note("all rows verified against the O(n²) oracle (full ≤ 20k, subsample beyond).");
    table.print();
}
