//! Generalized spheres: the separator type.
//!
//! The MTTV construction chooses a uniform random great circle on the lifted
//! sphere `S^D` and maps it back through the inverse stereographic
//! projection. Generic great circles map to spheres in `R^D`; circles
//! through the projection pole map to hyperplanes. A faithful implementation
//! therefore works with the Möbius-closed family "spheres ∪ hyperplanes",
//! which this module packages behind one classification API.

use crate::halfspace::Hyperplane;
use crate::point::Point;
use crate::sphere::Sphere;

/// Which side of a separator a point lies on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// Strictly inside (sphere interior / negative halfspace).
    Interior,
    /// On the separating surface (within tolerance).
    Surface,
    /// Strictly outside.
    Exterior,
}

impl Side {
    /// The paper routes surface points to the interior subtree (Section 3.2
    /// case 3: "if p is on S then recursively search on the left subtree").
    pub fn routes_interior(self) -> bool {
        matches!(self, Side::Interior | Side::Surface)
    }
}

/// A separator surface in `R^D`: a `(D-1)`-sphere or a hyperplane.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Separator<const D: usize> {
    /// Spherical separator (the common case for MTTV).
    Sphere(Sphere<D>),
    /// Flat separator (great circle through the pole, or a Bentley cut).
    Halfspace(Hyperplane<D>),
}

impl<const D: usize> Separator<D> {
    /// Signed distance to the separating surface (negative = interior).
    pub fn signed_distance(&self, p: &Point<D>) -> f64 {
        match self {
            Separator::Sphere(s) => s.signed_distance(p),
            Separator::Halfspace(h) => h.signed_distance(p),
        }
    }

    /// Classify a point with tolerance `tol`.
    pub fn side_with_tol(&self, p: &Point<D>, tol: f64) -> Side {
        match self {
            Separator::Sphere(s) => s.side_with_tol(p, tol),
            Separator::Halfspace(h) => h.side_with_tol(p, tol),
        }
    }

    /// Classify a point with the crate default tolerance.
    pub fn side(&self, p: &Point<D>) -> Side {
        self.side_with_tol(p, crate::EPS)
    }

    /// `true` when the closed ball `B(p, r)` meets the separating surface.
    /// This is the intersection-number predicate `ι_B(S)` of Section 2.1.
    pub fn intersects_ball(&self, p: &Point<D>, r: f64) -> bool {
        match self {
            Separator::Sphere(s) => s.intersects_ball(p, r),
            Separator::Halfspace(h) => h.intersects_ball(p, r),
        }
    }

    /// "Goes left" marching predicate: ball meets surface or interior.
    pub fn ball_touches_interior(&self, p: &Point<D>, r: f64) -> bool {
        match self {
            Separator::Sphere(s) => s.ball_touches_interior(p, r),
            Separator::Halfspace(h) => h.ball_touches_interior(p, r),
        }
    }

    /// "Goes right" marching predicate: ball meets surface or exterior.
    pub fn ball_touches_exterior(&self, p: &Point<D>, r: f64) -> bool {
        match self {
            Separator::Sphere(s) => s.ball_touches_exterior(p, r),
            Separator::Halfspace(h) => h.ball_touches_exterior(p, r),
        }
    }

    /// Flip orientation: interior becomes exterior and vice versa.
    ///
    /// Only flat separators can be flipped exactly; for spheres the inside
    /// is geometrically distinguished, so `flip` is available only for
    /// halfspaces and panics otherwise. Callers that need a balanced split
    /// relabel sides at a higher level instead.
    pub fn flip_halfspace(self) -> Self {
        match self {
            Separator::Halfspace(h) => Separator::Halfspace(Hyperplane {
                normal: -h.normal,
                offset: -h.offset,
            }),
            Separator::Sphere(_) => panic!("cannot flip a spherical separator"),
        }
    }
}

impl<const D: usize> From<Sphere<D>> for Separator<D> {
    fn from(s: Sphere<D>) -> Self {
        Separator::Sphere(s)
    }
}

impl<const D: usize> From<Hyperplane<D>> for Separator<D> {
    fn from(h: Hyperplane<D>) -> Self {
        Separator::Halfspace(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_and_halfspace_agree_on_api() {
        let sphere: Separator<2> = Sphere::new(Point::origin(), 1.0).into();
        let plane: Separator<2> = Hyperplane::axis_aligned(0, 1.0).into();
        assert_eq!(sphere.side(&Point::from([0.0, 0.0])), Side::Interior);
        assert_eq!(plane.side(&Point::from([0.0, 0.0])), Side::Interior);
        assert_eq!(sphere.side(&Point::from([5.0, 0.0])), Side::Exterior);
        assert_eq!(plane.side(&Point::from([5.0, 0.0])), Side::Exterior);
    }

    #[test]
    fn surface_routes_interior() {
        assert!(Side::Surface.routes_interior());
        assert!(Side::Interior.routes_interior());
        assert!(!Side::Exterior.routes_interior());
    }

    #[test]
    fn flip_halfspace_swaps_sides() {
        let plane: Separator<2> = Hyperplane::axis_aligned(0, 1.0).into();
        let flipped = plane.flip_halfspace();
        let p = Point::from([0.0, 0.0]);
        assert_eq!(plane.side(&p), Side::Interior);
        assert_eq!(flipped.side(&p), Side::Exterior);
        // Surface stays surface.
        let s = Point::from([1.0, 3.0]);
        assert_eq!(flipped.side(&s), Side::Surface);
    }

    #[test]
    #[should_panic(expected = "cannot flip")]
    fn flip_sphere_panics() {
        let sphere: Separator<2> = Sphere::new(Point::origin(), 1.0).into();
        let _ = sphere.flip_halfspace();
    }

    #[test]
    fn signed_distance_consistent_with_side() {
        let sep: Separator<3> = Sphere::new(Point::splat(1.0), 2.0).into();
        for p in [
            Point::from([1.0, 1.0, 1.0]),
            Point::from([5.0, 5.0, 5.0]),
            Point::from([3.0, 1.0, 1.0]),
        ] {
            let sd = sep.signed_distance(&p);
            match sep.side(&p) {
                Side::Interior => assert!(sd < 0.0),
                Side::Exterior => assert!(sd > 0.0),
                Side::Surface => assert!(sd.abs() <= crate::EPS),
            }
        }
    }
}
