//! # sepdc-bench
//!
//! Experiment harness reproducing every quantitative claim of the paper.
//! The paper has no empirical evaluation (it is a PRAM theory result), so
//! each experiment validates one theorem / claimed bound; see DESIGN.md §5
//! for the experiment index and EXPERIMENTS.md for recorded results.
//!
//! Run all experiments:
//! ```sh
//! cargo run --release -p sepdc-bench --bin exp -- all
//! ```
//! or a single one, e.g. `… --bin exp -- exp1`.

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;

pub use harness::{fit_power_law, Row, Table};
