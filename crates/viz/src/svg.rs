//! A minimal SVG document builder — just enough for the figures this
//! workspace produces, with no external dependencies.

use std::fmt::Write as _;

/// An SVG document under construction. Coordinates are raw SVG user units;
/// the [`crate::scene`] layer handles world-to-screen mapping.
#[derive(Clone, Debug)]
pub struct SvgDoc {
    width: f64,
    height: f64,
    body: String,
}

/// Escape text content for XML.
fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Format a coordinate compactly (3 decimals, no trailing zeros kept —
/// SVG files stay small even with thousands of points).
fn fmt_coord(v: f64) -> String {
    let s = format!("{v:.3}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() || s == "-" || s == "-0" {
        "0".to_string()
    } else {
        s.to_string()
    }
}

impl SvgDoc {
    /// New document of the given pixel size (white background).
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && height > 0.0,
            "document size must be positive"
        );
        let mut doc = SvgDoc {
            width,
            height,
            body: String::new(),
        };
        doc.rect(0.0, 0.0, width, height, "#ffffff", "none", 0.0);
        doc
    }

    /// Document width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Document height.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Filled/stroked rectangle.
    #[allow(clippy::too_many_arguments)]
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, stroke: &str, sw: f64) {
        writeln!(
            self.body,
            r#"<rect x="{}" y="{}" width="{}" height="{}" fill="{}" stroke="{}" stroke-width="{}"/>"#,
            fmt_coord(x),
            fmt_coord(y),
            fmt_coord(w),
            fmt_coord(h),
            escape(fill),
            escape(stroke),
            fmt_coord(sw)
        )
        .unwrap();
    }

    /// Circle with fill and stroke.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str, stroke: &str, sw: f64) {
        writeln!(
            self.body,
            r#"<circle cx="{}" cy="{}" r="{}" fill="{}" stroke="{}" stroke-width="{}"/>"#,
            fmt_coord(cx),
            fmt_coord(cy),
            fmt_coord(r.max(0.0)),
            escape(fill),
            escape(stroke),
            fmt_coord(sw)
        )
        .unwrap();
    }

    /// Circle with an opacity attribute (for depth-faded separators).
    pub fn circle_opacity(
        &mut self,
        cx: f64,
        cy: f64,
        r: f64,
        stroke: &str,
        sw: f64,
        opacity: f64,
    ) {
        writeln!(
            self.body,
            r#"<circle cx="{}" cy="{}" r="{}" fill="none" stroke="{}" stroke-width="{}" opacity="{}"/>"#,
            fmt_coord(cx),
            fmt_coord(cy),
            fmt_coord(r.max(0.0)),
            escape(stroke),
            fmt_coord(sw),
            fmt_coord(opacity.clamp(0.0, 1.0))
        )
        .unwrap();
    }

    /// Line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, sw: f64) {
        writeln!(
            self.body,
            r#"<line x1="{}" y1="{}" x2="{}" y2="{}" stroke="{}" stroke-width="{}"/>"#,
            fmt_coord(x1),
            fmt_coord(y1),
            fmt_coord(x2),
            fmt_coord(y2),
            escape(stroke),
            fmt_coord(sw)
        )
        .unwrap();
    }

    /// Text label.
    pub fn text(&mut self, x: f64, y: f64, size: f64, fill: &str, content: &str) {
        writeln!(
            self.body,
            r#"<text x="{}" y="{}" font-size="{}" font-family="sans-serif" fill="{}">{}</text>"#,
            fmt_coord(x),
            fmt_coord(y),
            fmt_coord(size),
            escape(fill),
            escape(content)
        )
        .unwrap();
    }

    /// Serialize the document.
    pub fn finish(&self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" viewBox=\"0 0 {w} {h}\">\n{body}</svg>\n",
            w = fmt_coord(self.width),
            h = fmt_coord(self.height),
            body = self.body
        )
    }

    /// Write to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        if let Some(dir) = path.as_ref().parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_structure() {
        let mut d = SvgDoc::new(100.0, 50.0);
        d.circle(10.0, 20.0, 5.0, "red", "black", 1.0);
        let out = d.finish();
        assert!(out.starts_with("<svg"));
        assert!(out.trim_end().ends_with("</svg>"));
        assert!(out.contains(r#"viewBox="0 0 100 50""#));
        assert!(out.contains("<circle"));
    }

    #[test]
    fn escaping() {
        let mut d = SvgDoc::new(10.0, 10.0);
        d.text(0.0, 0.0, 10.0, "black", "a<b & \"c\"");
        let out = d.finish();
        assert!(out.contains("a&lt;b &amp; &quot;c&quot;"));
        assert!(!out.contains("a<b"));
    }

    #[test]
    fn coordinates_are_compact() {
        assert_eq!(fmt_coord(1.0), "1");
        assert_eq!(fmt_coord(1.25), "1.25");
        assert_eq!(fmt_coord(0.12345), "0.123");
        assert_eq!(fmt_coord(-0.0004), "0");
        assert_eq!(fmt_coord(-3.1000), "-3.1");
    }

    #[test]
    fn negative_radius_clamped() {
        let mut d = SvgDoc::new(10.0, 10.0);
        d.circle(0.0, 0.0, -5.0, "none", "black", 1.0);
        assert!(d.finish().contains(r#"r="0""#));
    }

    #[test]
    fn opacity_clamped() {
        let mut d = SvgDoc::new(10.0, 10.0);
        d.circle_opacity(0.0, 0.0, 1.0, "black", 1.0, 7.0);
        assert!(d.finish().contains(r#"opacity="1""#));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_rejected() {
        SvgDoc::new(0.0, 10.0);
    }

    #[test]
    fn save_creates_parents() {
        let dir = std::env::temp_dir().join("sepdc_viz_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.svg");
        SvgDoc::new(10.0, 10.0).save(&path).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
