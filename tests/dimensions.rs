//! Dimension sweep: the whole pipeline is generic over `D`; exercise it
//! from 1 to 5 dimensions end to end (the paper treats `d` as an arbitrary
//! fixed constant).

use sepdc::core::{
    brute_force_knn, kdtree_all_knn, parallel_knn, simple_parallel_knn, validate_knn, KnnDcConfig,
    NeighborhoodSystem, QueryTree, QueryTreeConfig,
};
use sepdc::workloads::Workload;

fn check_dim<const D: usize, const E: usize>(n: usize, k: usize, seed: u64) {
    let pts = Workload::UniformCube.generate::<D>(n, seed);
    let cfg = KnnDcConfig::new(k).with_seed(seed);
    let oracle = brute_force_knn(&pts, k);

    let par = parallel_knn::<D, E>(&pts, &cfg);
    par.knn
        .same_distances(&oracle, 1e-9)
        .unwrap_or_else(|e| panic!("parallel d={D}: {e}"));
    validate_knn(&pts, &par.knn).unwrap_or_else(|e| panic!("validate d={D}: {e}"));

    let simple = simple_parallel_knn::<D, E>(&pts, &cfg);
    simple
        .knn
        .same_distances(&oracle, 1e-9)
        .unwrap_or_else(|e| panic!("simple d={D}: {e}"));

    kdtree_all_knn(&pts, k)
        .same_distances(&oracle, 1e-9)
        .unwrap_or_else(|e| panic!("kdtree d={D}: {e}"));

    // Query structure over the neighborhood system.
    let sys = NeighborhoodSystem::from_knn(&pts, &par.knn);
    let tree = QueryTree::build::<E>(sys.balls(), QueryTreeConfig::default(), seed);
    for p in pts.iter().take(40) {
        let mut fast = tree.covering(p);
        fast.sort_unstable();
        let mut slow: Vec<u32> = sys
            .balls()
            .iter()
            .enumerate()
            .filter(|(_, b)| b.contains(p))
            .map(|(i, _)| i as u32)
            .collect();
        slow.sort_unstable();
        assert_eq!(fast, slow, "query mismatch d={D}");
    }
}

#[test]
fn dimension_1() {
    check_dim::<1, 2>(300, 2, 11);
}

#[test]
fn dimension_2() {
    check_dim::<2, 3>(300, 2, 12);
}

#[test]
fn dimension_3() {
    check_dim::<3, 4>(300, 2, 13);
}

#[test]
fn dimension_4() {
    check_dim::<4, 5>(250, 2, 14);
}

#[test]
fn dimension_5() {
    check_dim::<5, 6>(200, 1, 15);
}

#[test]
fn batch_query_matches_pointwise() {
    let pts = Workload::Clusters.generate::<2>(600, 21);
    let knn = brute_force_knn(&pts, 2);
    let sys = NeighborhoodSystem::from_knn(&pts, &knn);
    let tree = QueryTree::build::<3>(sys.balls(), QueryTreeConfig::default(), 3);
    let probes = Workload::UniformCube.generate::<2>(200, 31);
    let batch = tree.batch_covering_interior(&probes);
    assert_eq!(batch.len(), probes.len());
    for (p, got) in probes.iter().zip(&batch) {
        assert_eq!(got, tree.covering_interior(p));
    }
}
